"""The syscall dispatcher and handler table.

``Kernel.syscall`` (aliased ``dispatch``) is the single entry point the
CPU calls at a ``syscall`` instruction.  It drives one
:class:`~repro.kernel.dispatch.SyscallContext` through the explicit
dispatch pipeline (``repro.kernel.dispatch``), whose stage order matches
Linux:

1. **block/count** — scheduler blocking, then syscall accounting;
2. **seccomp** — every attached filter runs (cycle cost scales with BPF
   length); the strictest action wins: KILL terminates, ERRNO
   short-circuits;
3. **trace_stop/verify** — TRACE stops the process into its tracer (two
   context switches) and the monitor may kill it;
4. **execute/account** — the handler runs, then telemetry is emitted.

Protection mechanisms hook extra behavior into the pipeline via
``kernel.pipeline.insert`` instead of special cases here.

Handlers implement real (simulated) semantics — files change, sockets move
bytes, regions change protection, credentials change — so both the
legitimate workloads and the attack payloads behave faithfully.  Security-
relevant actions are emitted on ``kernel.telemetry`` and mirrored into the
``kernel.events`` ring; the attack catalog uses that log as its success
oracle.
"""

import warnings
from collections import deque
from dataclasses import dataclass, field

from repro.errors import ProcessKilled, WouldBlock
from repro.kernel.dispatch import (
    DispatchPipeline,
    SyscallContext,
    cycle_free,
    trace_only,
)
from repro.kernel import errno
from repro.kernel.mm import (
    PROT_EXEC,
    PROT_READ,
    PROT_WRITE,
    standard_layout,
)
from repro.kernel.net import (
    EPOLL_CTL_ADD,
    EPOLL_CTL_DEL,
    EPOLL_CTL_MOD,
    EPOLLIN,
    Epoll,
    NetStack,
    SOCK_NONBLOCK,
    Socket,
)
from repro.kernel.process import Process
from repro.kernel.seccomp import (
    SECCOMP_RET_ACTION_FULL,
    SECCOMP_RET_DATA,
    SECCOMP_RET_ERRNO,
    SECCOMP_RET_KILL_PROCESS,
    SECCOMP_RET_KILL_THREAD,
    SECCOMP_RET_TRACE,
    SECCOMP_RET_TRAP,
    compute_action_cache,
    evaluate_filters,
)
from repro.kernel.vfs import (
    FileSystem,
    O_APPEND,
    O_CREAT,
    O_NONBLOCK,
    O_TRUNC,
    OpenFile,
    S_IFDIR,
    S_IFREG,
)
from repro.syscalls.table import SYSCALLS, nr_of
from repro.telemetry import TelemetryBus
from repro.vm.costs import DEFAULT_COSTS
from repro.vm.memory import WORD

#: Data-plane elision bound: at most this many bytes of file/socket payload
#: are materialized into simulated memory per transfer; cycle costs are
#: charged for the full size (DESIGN.md §2).
ELIDE_BYTES = 512

#: sockaddr layout in simulated memory: slot0=family, slot1=port, slot2=host.
SOCKADDR_SLOTS = 3

#: fcntl(2) commands (subset)
F_GETFL = 3
F_SETFL = 4


class _Pipe:
    """The byte queue shared by a pipe's two ends."""

    def __init__(self):
        self.buffer = b""
        self.write_closed = False


class _PipeEnd:
    """One fd of a pipe(2) pair."""

    def __init__(self, pipe, readable):
        self.pipe = pipe
        self.readable = readable

    def read(self, count):
        if not self.readable:
            return None
        chunk = self.pipe.buffer[:count]
        self.pipe.buffer = self.pipe.buffer[count:]
        return chunk

    def write(self, data):
        if self.readable:
            return -errno.EBADF
        self.pipe.buffer += data
        return len(data)


@dataclass
class KernelEvent:
    """One security-relevant action (the attack-success oracle reads these)."""

    kind: str
    pid: int
    details: dict = field(default_factory=dict)


class KernelEventLog:
    """A bounded ring of :class:`KernelEvent` — newest ``capacity`` kept.

    Long concurrent benches emit events at every accept/clone/reap; the
    seed's plain list grew without bound.  The ring keeps ``events_of()``
    semantics over the retained window and counts what it sheds in
    ``dropped`` so oracles can tell a quiet run from a truncated one.

    The log is a *view* over the telemetry bus: when constructed with a
    ``bus`` it subscribes to ``kind='kernel'`` events and mirrors them as
    :class:`KernelEvent` records; standalone construction (plus direct
    :meth:`append`) still works for unit tests.
    """

    def __init__(self, capacity=65536, bus=None):
        if capacity < 1:
            raise ValueError("event log capacity must be >= 1")
        self.capacity = capacity
        self._ring = deque(maxlen=capacity)
        #: events evicted by the cap (total recorded = len(self) + dropped)
        self.dropped = 0
        self.total = 0
        self._warned_dropped = False
        #: per-ring warnings registry: ``warnings.warn`` dedups through the
        #: module-global ``__warningregistry__`` (same message/category/line),
        #: which silently swallowed the truncation warning for every ring
        #: after the first in a process.  ``warn_explicit`` against this
        #: instance-owned registry keeps the once-only behavior *per ring*.
        self._warn_registry = {}
        if bus is not None:
            bus.subscribe(self._on_telemetry)

    def _on_telemetry(self, record):
        if record.kind == "kernel":
            self.append(KernelEvent(record.event, record.pid, record.data))

    def append(self, event):
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(event)
        self.total += 1

    def events_of(self, kind, allow_dropped=False):
        """Events of ``kind`` in the retained window, oldest first.

        After the ring has shed events this answer is silently incomplete,
        which corrupts oracles that count occurrences.  Callers that can
        tolerate a truncated window opt in with ``allow_dropped=True``;
        everyone else gets a one-time warning telling them to either
        assert ``dropped == 0`` or raise ``events_capacity``.
        """
        if self.dropped and not allow_dropped and not self._warned_dropped:
            self._warned_dropped = True
            warnings.warn_explicit(
                "KernelEventLog dropped %d events; events_of(%r) sees only "
                "the newest %d. Assert `kernel.events.dropped == 0` in "
                "oracles, raise events_capacity, or pass allow_dropped=True."
                % (self.dropped, kind, self.capacity),
                RuntimeWarning,
                __file__,
                0,
                module=__name__,
                registry=self._warn_registry,
            )
        return [event for event in self._ring if event.kind == kind]

    def __len__(self):
        return len(self._ring)

    def __iter__(self):
        return iter(self._ring)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return list(self._ring)[index]
        return self._ring[index]

    def __bool__(self):
        return bool(self._ring)

    def clear(self):
        self._ring.clear()


#: interned "dispatch.verdict.<verdict>" counter keys (account hot path)
_VERDICT_KEYS = {
    verdict: "dispatch.verdict." + verdict
    for verdict in ("allow", "errno", "kill", "violation")
}


class Kernel:
    """The simulated kernel: processes, VFS, network, dispatcher."""

    def __init__(self, costs=DEFAULT_COSTS, events_capacity=65536):
        self.costs = costs
        self.vfs = FileSystem()
        self.net = NetStack()
        self.processes = {}
        self._next_pid = 1000
        #: the telemetry spine — every subsystem's counters/events land here
        self.telemetry = TelemetryBus(capacity=events_capacity)
        self.events = KernelEventLog(events_capacity, bus=self.telemetry)
        #: interned "syscall.<name>" counter keys (dispatch hot path)
        self._syscall_keys = {}
        #: the staged syscall path; mechanisms hook in via pipeline.insert
        self.pipeline = self._build_pipeline()
        #: set by repro.sched.Scheduler when it takes over clone/blocking
        self.scheduler = None
        #: collision-checked child stack regions (slot 0 = root at STACK_TOP)
        from repro.sched.stackalloc import StackSlotAllocator

        self.stacks = StackSlotAllocator()
        #: every path passed to open/openat/creat (information-disclosure
        #: oracle for the AOCR-style attacks)
        self.open_log = []
        self._rng_state = 0x2545F4914F6CDD1D

        self._handlers = {
            "read": self._sys_read,
            "write": self._sys_write,
            "open": self._sys_open,
            "openat": self._sys_openat,
            "creat": self._sys_creat,
            "close": self._sys_close,
            "stat": self._sys_stat,
            "fstat": self._sys_fstat,
            "lseek": self._sys_lseek,
            "sendfile": self._sys_sendfile,
            "pread64": self._sys_pread,
            "pwrite64": self._sys_pwrite,
            "readv": self._sys_readv,
            "writev": self._sys_writev,
            "getdents": self._sys_getdents,
            "pipe": self._sys_pipe,
            "dup2": self._sys_dup2,
            "mmap": self._sys_mmap,
            "mprotect": self._sys_mprotect,
            "munmap": self._sys_munmap,
            "mremap": self._sys_mremap,
            "remap_file_pages": self._sys_remap_file_pages,
            "brk": self._sys_brk,
            "socket": self._sys_socket,
            "bind": self._sys_bind,
            "listen": self._sys_listen,
            "accept": self._sys_accept,
            "accept4": self._sys_accept4,
            "connect": self._sys_connect,
            "sendto": self._sys_sendto,
            "recvfrom": self._sys_recvfrom,
            "setsockopt": self._sys_setsockopt,
            "shutdown": self._sys_shutdown,
            "epoll_create1": self._sys_epoll_create1,
            "epoll_ctl": self._sys_epoll_ctl,
            "epoll_wait": self._sys_epoll_wait,
            "epoll_pwait": self._sys_epoll_wait,
            "clone": self._sys_clone,
            "fork": self._sys_fork,
            "vfork": self._sys_fork,
            "execve": self._sys_execve,
            "execveat": self._sys_execveat,
            "exit": self._sys_exit,
            "exit_group": self._sys_exit,
            "wait4": self._sys_wait4,
            "getpid": lambda proc, args: proc.pid,
            "gettid": lambda proc, args: proc.pid,
            "getuid": lambda proc, args: proc.creds.uid,
            "geteuid": lambda proc, args: proc.creds.euid,
            "getgid": lambda proc, args: proc.creds.gid,
            "getegid": lambda proc, args: proc.creds.egid,
            "setuid": self._sys_setuid,
            "setgid": self._sys_setgid,
            "setreuid": self._sys_setreuid,
            "chmod": self._sys_chmod,
            "dup": self._sys_dup,
            "unlink": self._sys_unlink,
            "rename": self._sys_rename,
            "mkdir": self._sys_mkdir,
            "nanosleep": self._sys_nanosleep,
            "getrandom": self._sys_getrandom,
            "ptrace": lambda proc, args: -errno.EPERM,
            "seccomp": lambda proc, args: -errno.EINVAL,
            "prctl": lambda proc, args: 0,
            "uname": lambda proc, args: 0,
            "time": lambda proc, args: 1_688_000_000,
            "gettimeofday": lambda proc, args: 0,
            "clock_gettime": lambda proc, args: 0,
            "futex": lambda proc, args: 0,
            "rt_sigaction": lambda proc, args: 0,
            "rt_sigprocmask": lambda proc, args: 0,
            "fcntl": self._sys_fcntl,
            "fsync": lambda proc, args: 0,
            "ioctl": lambda proc, args: 0,
            "umask": lambda proc, args: 0o022,
            "setsid": lambda proc, args: proc.pid,
            "getcwd": lambda proc, args: 0,
            "chdir": lambda proc, args: 0,
            "access": self._sys_access,
            "madvise": lambda proc, args: 0,
        }

    # ------------------------------------------------------------------
    # process management
    # ------------------------------------------------------------------

    def create_process(self, name, image=None, costs=None):
        """Create a PCB; if ``image`` is given, map segments and globals."""
        pid = self._next_pid
        self._next_pid += 1
        proc = Process(pid=pid, name=name)
        proc.ledger_costs = costs or self.costs
        if image is not None:
            proc.mm = standard_layout(image)
            image.write_globals(proc.memory)
        self.processes[pid] = proc
        return proc

    def install_seccomp(self, proc, seccomp_filter):
        """Attach a filter (as the monitor does before releasing the app).

        Like Linux at ``SECCOMP_SET_MODE_FILTER`` time, the per-syscall
        ALLOW bitmap is recomputed over *all* attached filters so that
        always-allowed syscalls skip the BPF engine on the hot path.
        """
        proc.seccomp_filters.append(seccomp_filter)
        proc.seccomp_action_cache = compute_action_cache(
            proc.seccomp_filters, [entry.nr for entry in SYSCALLS]
        )

    def run_child(self, child, image, entry, args=(), cpu_options=None):
        """Run a clone()d child at its start routine, to completion.

        Scheduling is cooperative and sequential (the parent is stopped
        while the child runs — DESIGN.md §6; use :class:`repro.sched.
        Scheduler` for preemptive interleaving).  The child shares the
        parent's memory and address space, and critically carries the
        parent's seccomp filters and tracer, so a BASTION monitor protects
        it identically (§7.1).  The child gets a disjoint stack region
        from the collision-checked slot allocator, released when it exits.
        """
        from repro.vm.cpu import CPU, CPUOptions

        stack_base = self.stacks.allocate(child.pid)
        cpu = CPU(
            image,
            child,
            self,
            cpu_options or CPUOptions(),
            entry=entry,
            entry_args=args,
            stack_base=stack_base,
        )
        try:
            return cpu.run()
        finally:
            self.stacks.release(child.pid)

    def record(self, kind, proc, **details):
        """Publish a security-relevant action on the telemetry bus.

        The ``kernel.events`` ring mirrors these via its bus subscription,
        so the attack oracles keep reading the log they always read.
        """
        self.telemetry.emit(
            "kernel",
            kind,
            pid=proc.pid,
            syscall=details.get("syscall"),
            data=details,
        )

    def events_of(self, kind, allow_dropped=False):
        return self.events.events_of(kind, allow_dropped=allow_dropped)

    def clock(self):
        """Global cycle clock while a scheduler drives this kernel.

        Returns ``None`` in the legacy single-process mode, where each
        process's own ledger is the only meaningful timeline.
        """
        return self.scheduler.now() if self.scheduler is not None else None

    # ------------------------------------------------------------------
    # dispatcher (the staged syscall pipeline)
    # ------------------------------------------------------------------

    def syscall(self, proc, name, args):
        """Dispatch one syscall through the staged pipeline."""
        return self.pipeline.run(SyscallContext(proc, name, args))

    #: historical name for the entry point; also what ``strace`` wraps
    dispatch = syscall

    def _build_pipeline(self):
        pipeline = DispatchPipeline(self.telemetry)
        pipeline.install("block", self._stage_block)
        pipeline.install("count", self._stage_count)
        pipeline.install("seccomp", self._stage_seccomp)
        pipeline.install("trace_stop", self._stage_trace_stop)
        pipeline.install("verify", self._stage_verify)
        pipeline.install("execute", self._stage_execute)
        pipeline.install("account", self._stage_account)
        return pipeline

    @cycle_free
    def _stage_block(self, ctx):
        """Under a scheduler, park a syscall that cannot complete yet."""
        if self.scheduler is not None and not self.scheduler.draining:
            self._maybe_block(ctx.proc, ctx.name, ctx.args)

    @cycle_free
    def _stage_count(self, ctx):
        name = ctx.name
        ctx.proc.count_syscall(name)
        counters = self.telemetry.counters
        counters["dispatch.syscalls"] = counters.get("dispatch.syscalls", 0) + 1
        keys = self._syscall_keys
        key = keys.get(name)
        if key is None:
            key = keys[name] = "syscall." + name
        counters[key] = counters.get(key, 0) + 1

    def _stage_seccomp(self, ctx):
        proc = ctx.proc
        if not proc.seccomp_filters:
            return
        name = ctx.name
        nr = nr_of(name)
        cache = proc.seccomp_action_cache
        if cache is not None and cache.allows(nr):
            # Linux's per-nr action bitmap: an always-ALLOW syscall
            # never enters the BPF engine — one bit test and go.
            proc.seccomp_cache_hits += 1
            self.telemetry.count("seccomp.cache_hits")
            proc.ledger.charge(self.costs.seccomp_cache_hit, "seccomp")
            return
        if cache is not None:
            proc.seccomp_cache_misses += 1
            self.telemetry.count("seccomp.cache_misses")
        action, insns = evaluate_filters(
            proc.seccomp_filters,
            nr,
            ip=proc.regs.rip,
            args=tuple(ctx.args) + (0,) * (6 - len(ctx.args)),
        )
        proc.ledger.charge(
            insns * self.costs.seccomp_per_bpf_instr_millicycles // 1000,
            "seccomp",
        )
        base = action & SECCOMP_RET_ACTION_FULL
        if base in (SECCOMP_RET_KILL_PROCESS, SECCOMP_RET_KILL_THREAD):
            ctx.verdict = "kill"
            self.telemetry.count("dispatch.verdict.kill")
            proc.kill("seccomp: %s not callable" % name)
            self.record("seccomp_kill", proc, syscall=name)
            raise ProcessKilled(
                "seccomp killed pid %d on %s" % (proc.pid, name),
                reason="seccomp",
            )
        if base == SECCOMP_RET_ERRNO:
            ctx.short_circuit(-(action & SECCOMP_RET_DATA), "errno")
            return
        if base in (SECCOMP_RET_TRACE, SECCOMP_RET_TRAP):
            ctx.trace = True

    @trace_only
    def _stage_trace_stop(self, ctx):
        proc = ctx.proc
        fast = False
        if proc.tracer is not None:
            fast = bool(proc.tracer.on_syscall_stop(proc, ctx.name))
        ctx.fast = fast
        # A trace stop costs two context switches — unless the tracer is
        # in hook-only accounting mode (Table 7 row 1 measures the seccomp
        # hook without the stop) or runs inside the kernel (§11.2:
        # in-kernel execution "completely resolves overhead incurred from
        # context switching").  A fast-path stop (memoized verdict) is
        # resumed in a batched continuation, amortizing the round trip
        # over ``costs.trace_stop_batch`` stops.
        if getattr(proc.tracer, "stops_at_trace", True) and not getattr(
            proc.tracer, "in_kernel", False
        ):
            full_trap = 2 * self.costs.context_switch
            proc.ledger.charge(
                full_trap // self.costs.trace_stop_batch if fast else full_trap,
                "trap",
            )

    @trace_only
    def _stage_verify(self, ctx):
        """Enforce the tracer's verdict: surface a monitor kill here."""
        proc = ctx.proc
        if proc.tracer is not None and not proc.alive:
            ctx.verdict = "violation"
            self.telemetry.count("dispatch.verdict.violation")
            pending, proc.pending_exception = (
                proc.pending_exception,
                None,
            )
            raise pending or ProcessKilled(
                "monitor killed pid %d on %s: %s"
                % (proc.pid, ctx.name, proc.kill_reason),
                reason=proc.kill_reason,
            )

    def _stage_execute(self, ctx):
        handler = self._handlers.get(ctx.name)
        if handler is None:
            ctx.result = -errno.ENOSYS
            return
        ctx.result = handler(ctx.proc, ctx.args)

    def _stage_account(self, ctx):
        bus = self.telemetry
        key = _VERDICT_KEYS.get(ctx.verdict)
        bus.count(key if key is not None else "dispatch.verdict." + ctx.verdict)
        bus.emit(
            "dispatch",
            "syscall",
            pid=ctx.proc.pid,
            syscall=ctx.name,
            verdict=ctx.verdict,
            cycles=ctx.proc.ledger.cycles - ctx.start_cycles,
        )

    def _maybe_block(self, proc, name, args):
        """Raise :class:`WouldBlock` for a syscall that cannot complete yet.

        Runs *before* syscall counting and seccomp so that a parked-and-
        restarted syscall is counted, filtered, and trace-stopped exactly
        once — when it completes.  That single-stop property is what makes
        monitor verdicts independent of the scheduler's quantum.
        """
        if name in ("accept", "accept4"):
            sock = proc.fdtable.get(self._arg(args, 0))
            if (
                isinstance(sock, Socket)
                and sock.listening
                and not sock.nonblocking
                and self.net.poll_backlog(sock) == "later"
            ):
                raise WouldBlock(
                    "accept",
                    lambda: self.net.poll_backlog(sock) != "later",
                    "pid %d port %d" % (proc.pid, sock.bound_port),
                )
        elif name in ("read", "recvfrom"):
            sock = proc.fdtable.get(self._arg(args, 0))
            if (
                isinstance(sock, Socket)
                and not sock.nonblocking
                and sock.connection is not None
                and not sock.connection.inbox
                and not sock.connection.closed
            ):
                conn = sock.connection
                raise WouldBlock(
                    "read",
                    lambda: bool(conn.inbox) or conn.closed,
                    "pid %d fd %d" % (proc.pid, self._arg(args, 0)),
                )
        elif name in ("epoll_wait", "epoll_pwait"):
            ep = proc.fdtable.get(self._arg(args, 0))
            if (
                isinstance(ep, Epoll)
                and self._arg(args, 3) != 0  # timeout 0 = nonblocking poll
                and not ep.poll(self.net, proc.fdtable, 1)
            ):
                fdtable = proc.fdtable
                raise WouldBlock(
                    "epoll",
                    lambda: bool(ep.poll(self.net, fdtable, 1)),
                    "pid %d epfd %d" % (proc.pid, self._arg(args, 0)),
                )
        elif name == "wait4":
            children = proc.children
            if children and not any(
                not child.alive and not child.reaped for child in children
            ) and any(child.alive for child in children):
                raise WouldBlock(
                    "child",
                    lambda: any(
                        not child.alive and not child.reaped
                        for child in children
                    ),
                    "pid %d" % proc.pid,
                )

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _charge_io(self, proc, nbytes):
        proc.ledger.charge(
            nbytes * self.costs.io_per_byte_millicycles // 1000, "kernel"
        )

    def _charge_net(self, proc, nbytes):
        proc.ledger.charge(
            nbytes * self.costs.net_per_byte_millicycles // 1000, "kernel"
        )

    @staticmethod
    def _arg(args, i, default=0):
        return args[i] if i < len(args) else default

    def _copy_bytes_to_user(self, proc, addr, data):
        """Write up to ELIDE_BYTES of payload into memory, one byte per slot."""
        for i, byte in enumerate(data[:ELIDE_BYTES]):
            proc.memory.write(addr + i * WORD, byte)

    def _read_bytes_from_user(self, proc, addr, count):
        """Read up to ELIDE_BYTES of payload; caller pads to full count."""
        take = min(count, ELIDE_BYTES)
        return bytes(
            proc.memory.read(addr + i * WORD) & 0xFF for i in range(take)
        )

    def _refresh_shadow(self, proc, addr, nslots):
        """Kernel-written user memory is a legitimate update: keep the
        BASTION shadow copies coherent (generalizing the §9.2 sockaddr
        handling to all kernel out-parameters)."""
        runtime = proc.bastion_runtime
        if runtime is not None and addr:
            runtime.ctx_write_mem(addr, nslots)

    def mm_is_executable(self, proc, addr):
        return proc.mm is not None and proc.mm.is_executable(addr)

    def record_arbitrary_code_execution(self, proc, addr):
        self.record("arbitrary_code_execution", proc, addr=addr)

    # ------------------------------------------------------------------
    # file I/O
    # ------------------------------------------------------------------

    def _sys_read(self, proc, args):
        fd, buf, count = (self._arg(args, i) for i in range(3))
        desc = proc.fdtable.get(fd)
        if desc is None:
            return -errno.EBADF
        if isinstance(desc, Socket):
            if desc.connection is None:
                return -errno.ENOTSOCK
            conn = desc.connection
            if desc.nonblocking and not conn.inbox and not conn.closed:
                return -errno.EAGAIN
            chunk = conn.take(count)
            self._copy_bytes_to_user(proc, buf, chunk)
            self.net.account_recv(len(chunk))
            self._charge_net(proc, len(chunk))
            return len(chunk)
        if isinstance(desc, _PipeEnd):
            chunk = desc.read(count)
            if chunk is None:
                return -errno.EBADF
            self._copy_bytes_to_user(proc, buf, chunk)
            self._charge_io(proc, len(chunk))
            return len(chunk)
        chunk = desc.read(count)
        if chunk is None:
            return -errno.EISDIR
        self._copy_bytes_to_user(proc, buf, chunk)
        self._charge_io(proc, len(chunk))
        return len(chunk)

    def _sys_write(self, proc, args):
        fd, buf, count = (self._arg(args, i) for i in range(3))
        desc = proc.fdtable.get(fd)
        if desc is None:
            # stdout/stderr: swallow but succeed
            if fd in (1, 2):
                self._charge_io(proc, count)
                return count
            return -errno.EBADF
        prefix = self._read_bytes_from_user(proc, buf, count)
        if isinstance(desc, Socket):
            if desc.connection is None:
                return -errno.ENOTSOCK
            self.net.account_send(count)
            self._charge_net(proc, count)
            desc.connection.server_write(count, prefix)
            return count
        data = prefix + b"\x00" * (count - len(prefix))
        rc = desc.write(data)
        if rc < 0:
            return rc
        self._charge_io(proc, count)
        return count

    def _sys_open(self, proc, args):
        path_ptr, flags, mode = (self._arg(args, i) for i in range(3))
        path = proc.memory.read_cstr(path_ptr)
        return self._open_common(proc, path, flags, mode)

    def _sys_openat(self, proc, args):
        _dirfd, path_ptr, flags, mode = (self._arg(args, i) for i in range(4))
        path = proc.memory.read_cstr(path_ptr)
        return self._open_common(proc, path, flags, mode)

    def _sys_creat(self, proc, args):
        path_ptr, mode = (self._arg(args, i) for i in range(2))
        path = proc.memory.read_cstr(path_ptr)
        return self._open_common(proc, path, O_CREAT | O_TRUNC, mode)

    def _open_common(self, proc, path, flags, mode):
        self.open_log.append((proc.pid, path))
        if flags & O_CREAT:
            node = self.vfs.create(path, mode or 0o644)
            if node is None:
                return -errno.ENOENT
        else:
            node = self.vfs.lookup(path)
            if node is None:
                return -errno.ENOENT
        if flags & O_TRUNC and node.kind == "file":
            node.data = b""
        desc = OpenFile(node=node, flags=flags, path=path)
        if flags & O_APPEND:
            desc.pos = len(node.data)
        return proc.fdtable.install(desc)

    def _sys_close(self, proc, args):
        return proc.fdtable.close(self._arg(args, 0))

    def _write_stat(self, proc, statbuf, node):
        kind_bits = S_IFREG if node.kind == "file" else S_IFDIR
        proc.memory.write(statbuf, kind_bits | node.mode)
        proc.memory.write(statbuf + WORD, node.size)
        proc.memory.write(statbuf + 2 * WORD, node.uid)
        proc.memory.write(statbuf + 3 * WORD, node.gid)
        self._refresh_shadow(proc, statbuf, 4)
        return 0

    def _sys_stat(self, proc, args):
        path_ptr, statbuf = (self._arg(args, i) for i in range(2))
        node = self.vfs.lookup(proc.memory.read_cstr(path_ptr))
        if node is None:
            return -errno.ENOENT
        return self._write_stat(proc, statbuf, node)

    def _sys_fstat(self, proc, args):
        fd, statbuf = (self._arg(args, i) for i in range(2))
        desc = proc.fdtable.get(fd)
        if desc is None:
            return -errno.EBADF
        if isinstance(desc, Socket):
            proc.memory.write(statbuf, 0o140000)
            proc.memory.write(statbuf + WORD, 0)
            return 0
        return self._write_stat(proc, statbuf, desc.node)

    def _sys_lseek(self, proc, args):
        fd, offset, whence = (self._arg(args, i) for i in range(3))
        desc = proc.fdtable.get(fd)
        if desc is None or isinstance(desc, Socket):
            return -errno.EBADF
        return desc.seek(offset, whence)

    def _sys_pread(self, proc, args):
        fd, buf, count, offset = (self._arg(args, i) for i in range(4))
        desc = proc.fdtable.get(fd)
        if desc is None or isinstance(desc, Socket):
            return -errno.EBADF
        saved = desc.pos
        desc.pos = offset
        chunk = desc.read(count)
        desc.pos = saved
        if chunk is None:
            return -errno.EISDIR
        self._copy_bytes_to_user(proc, buf, chunk)
        self._charge_io(proc, len(chunk))
        return len(chunk)

    def _sys_pwrite(self, proc, args):
        fd, buf, count, offset = (self._arg(args, i) for i in range(4))
        desc = proc.fdtable.get(fd)
        if desc is None or isinstance(desc, Socket):
            return -errno.EBADF
        prefix = self._read_bytes_from_user(proc, buf, count)
        saved = desc.pos
        desc.pos = offset
        rc = desc.write(prefix + b"\x00" * (count - len(prefix)))
        desc.pos = saved
        if rc < 0:
            return rc
        self._charge_io(proc, count)
        return count

    def _read_iovec(self, proc, iov_ptr, iovcnt):
        """Decode a ``struct iovec`` array: (base, len) pairs, one slot each."""
        vectors = []
        for i in range(min(iovcnt, 64)):
            base = proc.memory.read(iov_ptr + 2 * i * WORD)
            length = proc.memory.read(iov_ptr + (2 * i + 1) * WORD)
            vectors.append((base, max(length, 0)))
        return vectors

    def _sys_readv(self, proc, args):
        fd, iov_ptr, iovcnt = (self._arg(args, i) for i in range(3))
        total = 0
        for base, length in self._read_iovec(proc, iov_ptr, iovcnt):
            if length == 0:
                continue
            n = self._sys_read(proc, [fd, base, length])
            if n < 0:
                return n if total == 0 else total
            total += n
            if n < length:
                break
        return total

    def _sys_writev(self, proc, args):
        fd, iov_ptr, iovcnt = (self._arg(args, i) for i in range(3))
        total = 0
        for base, length in self._read_iovec(proc, iov_ptr, iovcnt):
            if length == 0:
                continue
            n = self._sys_write(proc, [fd, base, length])
            if n < 0:
                return n if total == 0 else total
            total += n
        return total

    def _sys_pipe(self, proc, args):
        """pipe(fds): an in-memory byte queue behind two fds."""
        fds_ptr = self._arg(args, 0)
        pipe = _Pipe()
        read_fd = proc.fdtable.install(_PipeEnd(pipe, readable=True))
        write_fd = proc.fdtable.install(_PipeEnd(pipe, readable=False))
        proc.memory.write(fds_ptr, read_fd)
        proc.memory.write(fds_ptr + WORD, write_fd)
        return 0

    def _sys_dup2(self, proc, args):
        old_fd, new_fd = self._arg(args, 0), self._arg(args, 1)
        obj = proc.fdtable.get(old_fd)
        if obj is None:
            return -errno.EBADF
        proc.fdtable.close(new_fd)
        proc.fdtable._table[new_fd] = obj
        return new_fd

    def _sys_sendfile(self, proc, args):
        out_fd, in_fd, _off_ptr, count = (self._arg(args, i) for i in range(4))
        src = proc.fdtable.get(in_fd)
        dst = proc.fdtable.get(out_fd)
        if src is None or dst is None:
            return -errno.EBADF
        if isinstance(src, Socket) or src.node.kind != "file":
            return -errno.EINVAL
        chunk = src.read(count)
        nbytes = len(chunk)
        self._charge_io(proc, nbytes)
        if isinstance(dst, Socket):
            if dst.connection is None:
                return -errno.ENOTSOCK
            self.net.account_send(nbytes)
            self._charge_net(proc, nbytes)
            dst.connection.server_write(nbytes, chunk[:ELIDE_BYTES])
        else:
            dst.write(chunk)
            self._charge_io(proc, nbytes)
        return nbytes

    def _sys_getdents(self, proc, args):
        """getdents(fd, dirp, count): simplified directory entries.

        Entries are written as consecutive NUL-terminated names (one char
        per slot); ``count`` bounds the slots written.  The description's
        offset tracks how many entries have been consumed, so repeated
        calls page through the directory and finally return 0.
        """
        fd, dirp, count = (self._arg(args, i) for i in range(3))
        desc = proc.fdtable.get(fd)
        if desc is None or isinstance(desc, (Socket, _PipeEnd)):
            return -errno.EBADF
        if desc.node.kind != "dir":
            return -errno.ENOTDIR
        names = sorted(desc.node.children)
        written = 0
        index = desc.pos
        while index < len(names):
            name = names[index]
            needed = len(name) + 1
            if written + needed > count:
                break
            proc.memory.write_cstr(dirp + written * WORD, name)
            written += needed
            index += 1
        desc.pos = index
        self._charge_io(proc, written)
        return written

    def _sys_access(self, proc, args):
        path_ptr = self._arg(args, 0)
        node = self.vfs.lookup(proc.memory.read_cstr(path_ptr))
        return 0 if node is not None else -errno.ENOENT

    def _sys_dup(self, proc, args):
        return proc.fdtable.dup(self._arg(args, 0))

    def _sys_unlink(self, proc, args):
        return self.vfs.unlink(proc.memory.read_cstr(self._arg(args, 0)))

    def _sys_rename(self, proc, args):
        old = proc.memory.read_cstr(self._arg(args, 0))
        new = proc.memory.read_cstr(self._arg(args, 1))
        return self.vfs.rename(old, new)

    def _sys_mkdir(self, proc, args):
        path = proc.memory.read_cstr(self._arg(args, 0))
        return self.vfs.mkdir(path, self._arg(args, 1, 0o755))

    # ------------------------------------------------------------------
    # memory management
    # ------------------------------------------------------------------

    def _sys_mmap(self, proc, args):
        addr, length, prot, flags, fd, offset = (
            self._arg(args, i) for i in range(6)
        )
        result = proc.mm.do_mmap(addr, length, prot, flags)
        if result > 0 and prot & PROT_EXEC:
            self.record("mmap_exec", proc, addr=result, length=length, prot=prot)
        return result

    def _sys_mprotect(self, proc, args):
        addr, length, prot = (self._arg(args, i) for i in range(3))
        rc = proc.mm.do_mprotect(addr, length, prot)
        if rc == 0 and prot & PROT_EXEC:
            self.record(
                "mprotect_exec",
                proc,
                addr=addr,
                length=length,
                prot=prot,
                writable=bool(prot & PROT_WRITE),
            )
        return rc

    def _sys_munmap(self, proc, args):
        return proc.mm.do_munmap(self._arg(args, 0), self._arg(args, 1))

    def _sys_mremap(self, proc, args):
        old_addr, old_len, new_len = (self._arg(args, i) for i in range(3))
        region = proc.mm.region_at(old_addr)
        prot = region.prot if region else PROT_READ | PROT_WRITE
        proc.mm.do_munmap(old_addr, old_len)
        self.record("mremap", proc, old=old_addr, new_len=new_len)
        return proc.mm.do_mmap(0, new_len, prot, 0, tag="mremap")

    def _sys_remap_file_pages(self, proc, args):
        self.record("remap_file_pages", proc, addr=self._arg(args, 0))
        return 0

    def _sys_brk(self, proc, args):
        return proc.mm.do_brk(self._arg(args, 0))

    # ------------------------------------------------------------------
    # networking
    # ------------------------------------------------------------------

    def _sys_socket(self, proc, args):
        domain, type_, protocol = (self._arg(args, i) for i in range(3))
        return proc.fdtable.install(Socket(domain, type_, protocol))

    def _read_sockaddr(self, proc, addr_ptr):
        family = proc.memory.read(addr_ptr)
        port = proc.memory.read(addr_ptr + WORD)
        host = proc.memory.read(addr_ptr + 2 * WORD)
        return family, port, host

    def _sys_bind(self, proc, args):
        fd, addr_ptr = self._arg(args, 0), self._arg(args, 1)
        sock = proc.fdtable.get(fd)
        if not isinstance(sock, Socket):
            return -errno.ENOTSOCK
        _family, port, _host = self._read_sockaddr(proc, addr_ptr)
        if not self.net.bind(sock, port):
            return -errno.EADDRINUSE
        return 0

    def _sys_listen(self, proc, args):
        fd, backlog = self._arg(args, 0), self._arg(args, 1)
        sock = proc.fdtable.get(fd)
        if not isinstance(sock, Socket):
            return -errno.ENOTSOCK
        self.net.listen(sock, backlog)
        return 0

    def _sys_accept(self, proc, args):
        return self._accept_common(proc, args, flags=0)

    def _sys_accept4(self, proc, args):
        return self._accept_common(proc, args, flags=self._arg(args, 3))

    def _accept_common(self, proc, args, flags):
        fd, addr_ptr, _len_ptr = (self._arg(args, i) for i in range(3))
        sock = proc.fdtable.get(fd)
        if not isinstance(sock, Socket):
            return -errno.ENOTSOCK
        if not sock.listening:
            return -errno.EINVAL
        conn = self.net.next_connection(sock)
        if conn is None:
            return -errno.EAGAIN
        conn_sock = Socket(sock.domain, sock.type, sock.protocol, connection=conn)
        if flags & SOCK_NONBLOCK:
            conn_sock.nonblocking = True
        new_fd = proc.fdtable.install(conn_sock)
        if addr_ptr:
            # kernel-written out-parameter (§9.2's struct sockaddr)
            proc.memory.write(addr_ptr, 2)  # AF_INET
            proc.memory.write(addr_ptr + WORD, conn.peer_port)
            proc.memory.write(addr_ptr + 2 * WORD, conn.peer_host)
            self._refresh_shadow(proc, addr_ptr, SOCKADDR_SLOTS)
        return new_fd

    def _sys_connect(self, proc, args):
        fd, addr_ptr = self._arg(args, 0), self._arg(args, 1)
        sock = proc.fdtable.get(fd)
        if not isinstance(sock, Socket):
            return -errno.ENOTSOCK
        _family, port, _host = self._read_sockaddr(proc, addr_ptr)
        sock.connected_port = port
        self.record("connect", proc, port=port)
        return 0

    def _sys_sendto(self, proc, args):
        return self._sys_write(proc, args[:3])

    def _sys_recvfrom(self, proc, args):
        return self._sys_read(proc, args[:3])

    def _sys_setsockopt(self, proc, args):
        return 0

    def _sys_shutdown(self, proc, args):
        sock = proc.fdtable.get(self._arg(args, 0))
        if not isinstance(sock, Socket):
            return -errno.ENOTSOCK
        if sock.connection is not None:
            sock.connection.closed = True
        return 0

    # ------------------------------------------------------------------
    # event multiplexing (epoll)
    # ------------------------------------------------------------------

    def _sys_epoll_create1(self, proc, args):
        return proc.fdtable.install(Epoll())

    def _sys_epoll_ctl(self, proc, args):
        """epoll_ctl(epfd, op, fd, event): maintain the interest set.

        ``struct epoll_event`` is two slots in simulated memory:
        slot0 = events mask, slot1 = user data (apps conventionally store
        the fd there).  A NULL event pointer defaults to EPOLLIN with the
        fd as data, which is what DEL (which ignores the event) passes.
        """
        epfd, op, fd, event_ptr = (self._arg(args, i) for i in range(4))
        ep = proc.fdtable.get(epfd)
        if ep is None:
            return -errno.EBADF
        if not isinstance(ep, Epoll):
            return -errno.EINVAL
        target = proc.fdtable.get(fd)
        if target is None:
            return -errno.EBADF
        if op == EPOLL_CTL_DEL:
            return 0 if ep.remove(fd) else -errno.ENOENT
        if not isinstance(target, Socket):
            # regular files are always ready; Linux refuses them
            return -errno.EPERM
        mask, data = EPOLLIN, fd
        if event_ptr:
            mask = proc.memory.read(event_ptr)
            data = proc.memory.read(event_ptr + WORD)
        if op == EPOLL_CTL_ADD:
            return 0 if ep.add(fd, target, mask, data) else -errno.EEXIST
        if op == EPOLL_CTL_MOD:
            return 0 if ep.modify(fd, mask, data) else -errno.ENOENT
        return -errno.EINVAL

    def _sys_epoll_wait(self, proc, args):
        """epoll_wait(epfd, events, maxevents, timeout): harvest readiness.

        Blocking (timeout != 0 with nothing ready) is handled by
        ``_maybe_block`` before this handler runs; by execute time there
        is either something ready or the scheduler is draining.  Each
        harvested event is written as an (events, data) slot pair and
        charged ``costs.epoll_per_event``.
        """
        epfd, events_ptr, maxevents, _timeout = (
            self._arg(args, i) for i in range(4)
        )
        ep = proc.fdtable.get(epfd)
        if ep is None:
            return -errno.EBADF
        if not isinstance(ep, Epoll) or maxevents <= 0:
            return -errno.EINVAL
        ready = ep.poll(self.net, proc.fdtable, maxevents)
        if ready:
            proc.ledger.charge(
                len(ready) * self.costs.epoll_per_event, "kernel"
            )
            for i, (fd, events, data) in enumerate(ready):
                proc.memory.write(events_ptr + 2 * i * WORD, events)
                proc.memory.write(events_ptr + (2 * i + 1) * WORD, data)
            # kernel-written out-parameter, like the accept4 sockaddr
            self._refresh_shadow(proc, events_ptr, 2 * len(ready))
            self.telemetry.count("epoll.events", len(ready))
        self.telemetry.count("epoll.waits")
        return len(ready)

    def _sys_fcntl(self, proc, args):
        """fcntl(fd, cmd, arg): F_GETFL/F_SETFL drive O_NONBLOCK on sockets.

        Everything else keeps the historical always-0 behavior (the apps
        only probe status flags).
        """
        fd, cmd, arg = (self._arg(args, i) for i in range(3))
        desc = proc.fdtable.get(fd)
        if isinstance(desc, Socket):
            if cmd == F_GETFL:
                return O_NONBLOCK if desc.nonblocking else 0
            if cmd == F_SETFL:
                desc.nonblocking = bool(arg & O_NONBLOCK)
                return 0
        return 0

    # ------------------------------------------------------------------
    # processes, exec, credentials
    # ------------------------------------------------------------------

    def _spawn_child(self, proc, kind):
        child = Process(pid=self._next_pid, name="%s-child" % proc.name)
        self._next_pid += 1
        child.parent = proc
        child.creds = proc.creds.clone()
        child.mm = proc.mm
        child.memory = proc.memory
        # fd numbers carry over (the worker's inherited listen fd); the
        # open file descriptions behind them are shared, fork(2)-style
        child.fdtable = proc.fdtable.fork()
        # seccomp filters, the tracer, and the (shared-shadow-region)
        # BASTION runtime are inherited (§7.1)
        child.seccomp_filters = list(proc.seccomp_filters)
        child.seccomp_action_cache = proc.seccomp_action_cache
        child.tracer = proc.tracer
        child.bastion_runtime = proc.bastion_runtime
        child.ledger_costs = proc.ledger_costs
        proc.children.append(child)
        self.processes[child.pid] = child
        self.record(kind, proc, child_pid=child.pid)
        return child.pid

    def _sys_clone(self, proc, args):
        child_pid = self._spawn_child(proc, "clone")
        if self.scheduler is not None:
            # glibc clone convention in our apps: args[2] is the start
            # routine, args[3] its argument.  Under a scheduler the child
            # is *enqueued* — it runs interleaved with the parent instead
            # of being driven to completion by run_child.
            fn_addr = self._arg(args, 2)
            if fn_addr:
                self.scheduler.spawn(
                    proc,
                    self.processes[child_pid],
                    fn_addr,
                    self._arg(args, 3),
                )
        return child_pid

    def _sys_fork(self, proc, args):
        return self._spawn_child(proc, "fork")

    def _sys_execve(self, proc, args):
        path_ptr, argv_ptr, _envp_ptr = (self._arg(args, i) for i in range(3))
        path = proc.memory.read_cstr(path_ptr)
        argv = []
        if argv_ptr:
            for ptr in proc.memory.read_vector(argv_ptr):
                argv.append(proc.memory.read_cstr(ptr))
        node = self.vfs.lookup(path)
        self.record("execve", proc, path=path, argv=argv, found=node is not None)
        if node is None:
            return -errno.ENOENT
        # The simulation records the exec and lets the caller continue —
        # real execve does not return on success (documented deviation).
        return 0

    def _sys_execveat(self, proc, args):
        _dirfd, path_ptr, argv_ptr, envp_ptr, _flags = (
            self._arg(args, i) for i in range(5)
        )
        return self._sys_execve(proc, [path_ptr, argv_ptr, envp_ptr])

    def _sys_exit(self, proc, args):
        proc.exit(self._arg(args, 0))
        return 0

    def _sys_wait4(self, proc, args):
        if self.scheduler is None:
            # Legacy mode: children run synchronously, so by wait4 time the
            # last child has already finished — report its pid.
            if proc.children:
                return proc.children[-1].pid
            return -errno.ESRCH
        # Scheduler mode: reap the first unreaped zombie, POSIX-style.
        status_ptr = self._arg(args, 1)
        for child in proc.children:
            if not child.alive and not child.reaped:
                child.reaped = True
                child.state = "reaped"
                if status_ptr:
                    # wstatus word: exit code in bits 8..15, signal in 0..6
                    word = (
                        (child.exit_code & 0xFF) << 8 if child.exited else 137
                    )
                    proc.memory.write(status_ptr, word)
                    self._refresh_shadow(proc, status_ptr, 1)
                self.record(
                    "reap", proc, child_pid=child.pid, exit_code=child.exit_code
                )
                return child.pid
        if not proc.children:
            return -errno.ECHILD
        # Children exist but are still running (only reachable in drain
        # mode, where blocking is disabled): report "try again".
        return -errno.EAGAIN

    def _sys_setuid(self, proc, args):
        uid = self._arg(args, 0)
        rc = proc.creds.setuid(uid)
        self.record("setuid", proc, uid=uid, rc=rc)
        return rc

    def _sys_setgid(self, proc, args):
        gid = self._arg(args, 0)
        rc = proc.creds.setgid(gid)
        self.record("setgid", proc, gid=gid, rc=rc)
        return rc

    def _sys_setreuid(self, proc, args):
        ruid, euid = self._arg(args, 0), self._arg(args, 1)
        rc = proc.creds.setreuid(ruid, euid)
        self.record("setreuid", proc, ruid=ruid, euid=euid, rc=rc)
        return rc

    def _sys_chmod(self, proc, args):
        path_ptr, mode = self._arg(args, 0), self._arg(args, 1)
        path = proc.memory.read_cstr(path_ptr)
        rc = self.vfs.chmod(path, mode)
        self.record("chmod", proc, path=path, mode=mode, rc=rc)
        return rc

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------

    def _sys_nanosleep(self, proc, args):
        proc.ledger.charge(100, "kernel")
        return 0

    def _sys_getrandom(self, proc, args):
        buf, count = self._arg(args, 0), self._arg(args, 1)
        take = min(count, ELIDE_BYTES)
        out = []
        state = self._rng_state
        for _ in range(take):
            state = (state * 6364136223846793005 + 1442695040888963407) & (
                (1 << 64) - 1
            )
            out.append((state >> 33) & 0xFF)
        self._rng_state = state
        self._copy_bytes_to_user(proc, buf, bytes(out))
        return count
