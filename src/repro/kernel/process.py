"""Process control blocks and register files."""

from dataclasses import dataclass, field

from repro.kernel import errno
from repro.kernel.cred import Credentials
from repro.syscalls.table import nr_of
from repro.vm.costs import DEFAULT_COSTS, CycleLedger
from repro.vm.memory import Memory


@dataclass
class RegisterFile:
    """The registers the monitor sees through PTRACE_GETREGS at a stop.

    On x86-64, syscall arguments arrive in rdi, rsi, rdx, r10, r8, r9 with
    the syscall number in rax; rip points at the syscall instruction, rbp
    is the frame pointer the monitor's unwinder walks.
    """

    rax: int = 0
    rdi: int = 0
    rsi: int = 0
    rdx: int = 0
    r10: int = 0
    r8: int = 0
    r9: int = 0
    rip: int = 0
    rbp: int = 0
    rsp: int = 0

    ARG_ORDER = ("rdi", "rsi", "rdx", "r10", "r8", "r9")

    def syscall_args(self):
        return tuple(getattr(self, reg) for reg in self.ARG_ORDER)

    def arg(self, position):
        """1-based syscall argument."""
        return getattr(self, self.ARG_ORDER[position - 1])

    def copy(self):
        return RegisterFile(
            self.rax,
            self.rdi,
            self.rsi,
            self.rdx,
            self.r10,
            self.r8,
            self.r9,
            self.rip,
            self.rbp,
            self.rsp,
        )


class FDTable:
    """Per-process file descriptor table."""

    #: RLIMIT_NOFILE stand-in, sized for the C10k event-loop benches
    #: (10k concurrent connections + listener + epoll fd headroom)
    MAX_FDS = 16384

    def __init__(self):
        self._table = {}
        self._next = 3  # 0/1/2 reserved for std streams

    def install(self, obj):
        if len(self._table) >= self.MAX_FDS:
            return -errno.EMFILE
        fd = self._next
        while fd in self._table:
            fd += 1
        self._table[fd] = obj
        self._next = fd + 1
        return fd

    def get(self, fd):
        return self._table.get(fd)

    def close(self, fd):
        if fd in self._table:
            del self._table[fd]
            return 0
        return -errno.EBADF

    def dup(self, fd):
        obj = self._table.get(fd)
        if obj is None:
            return -errno.EBADF
        return self.install(obj)

    def fork(self):
        """fork(2) semantics: same fd numbers, shared open descriptions."""
        table = FDTable()
        table._table = dict(self._table)
        table._next = self._next
        return table

    def __len__(self):
        return len(self._table)


@dataclass
class Process:
    """A simulated process: memory, registers, fds, creds, seccomp, tracer."""

    pid: int
    name: str = "app"
    memory: Memory = field(default_factory=Memory)
    regs: RegisterFile = field(default_factory=RegisterFile)
    fdtable: FDTable = field(default_factory=FDTable)
    creds: Credentials = field(default_factory=Credentials)
    mm: object = None  # AddressSpace, set at load time
    seccomp_filters: list = field(default_factory=list)
    #: per-syscall-nr ALLOW bitmap (SeccompActionCache), rebuilt on every
    #: filter install; None while any installed filter is arg/ip-dependent
    seccomp_action_cache: object = None
    seccomp_cache_hits: int = 0
    seccomp_cache_misses: int = 0
    tracer: object = None  # BastionMonitor (or any on_syscall_stop object)
    #: exception the dispatcher should raise for this process (set by the
    #: monitor's kill verdict so callers can catch SyscallIntegrityViolation)
    pending_exception: object = None
    parent: object = None
    children: list = field(default_factory=list)

    alive: bool = True
    exited: bool = False
    exit_code: int = 0
    kill_reason: str = None
    #: scheduler lifecycle: runnable | running | blocked | zombie | reaped
    state: str = "runnable"
    #: set once a wait4 has collected this process's exit status
    reaped: bool = False

    #: cycle accounting for this run (CPU + kernel + monitor all charge here)
    ledger: CycleLedger = field(default_factory=CycleLedger)
    ledger_costs: object = DEFAULT_COSTS

    #: per-syscall dispatch counts (Table 4's ground truth)
    syscall_counts: dict = field(default_factory=dict)
    trace_log: list = field(default_factory=list)

    #: BASTION pieces attached by the monitor at launch
    bastion_runtime: object = None
    cpu: object = None

    def set_registers(self, syscall_name, args, rip, rbp, rsp):
        """Materialize the register file at a syscall instruction."""
        regs = self.regs
        regs.rax = nr_of(syscall_name)
        padded = list(args) + [0] * (6 - len(args))
        regs.rdi, regs.rsi, regs.rdx, regs.r10, regs.r8, regs.r9 = padded[:6]
        regs.rip = rip
        regs.rbp = rbp
        regs.rsp = rsp

    def kill(self, reason):
        self.alive = False
        self.kill_reason = reason

    def exit(self, code):
        self.alive = False
        self.exited = True
        self.exit_code = code

    def count_syscall(self, name):
        self.syscall_counts[name] = self.syscall_counts.get(name, 0) + 1
