"""The monitor's view into a traced process.

The BASTION monitor runs in a separate process and can only learn about the
protected application through this interface (§7.1): PTRACE_GETREGS for the
register file, PTRACE_PEEKDATA / ``process_vm_readv`` for memory (stack
frames, argument pointees, the shadow region).  Every call charges realistic
cycle costs to the run's ledger — the dominant overhead the paper measures
in Table 7.

For the §11.2 ablation ("run the monitor inside the kernel"), construct the
handle with ``transport="inkernel"``: the same API, but each access costs a
direct memory read instead of a cross-process round trip.
"""

from repro.errors import MonitorError
from repro.vm.memory import WORD


class PtraceHandle:
    """Tracer-side accessor for one traced process."""

    def __init__(self, proc, costs, transport="ptrace"):
        if transport not in ("ptrace", "inkernel"):
            raise MonitorError("unknown ptrace transport %r" % transport)
        self.proc = proc
        self.costs = costs
        self.transport = transport
        self.getregs_calls = 0
        self.peek_calls = 0
        self.readv_calls = 0
        self.words_read = 0

    # -- cost helpers -------------------------------------------------------

    def _charge(self, ptrace_cost, nwords=0):
        ledger = self.proc.ledger
        if self.transport == "inkernel":
            ledger.charge(
                self.costs.inkernel_state_access + nwords, "monitor"
            )
        else:
            ledger.charge(ptrace_cost + self.costs.readv_per_word * nwords, "ptrace")

    # -- the ptrace surface ---------------------------------------------------

    def getregs(self):
        """PTRACE_GETREGS: a copy of the stopped process's registers."""
        self.getregs_calls += 1
        self._charge(self.costs.ptrace_getregs)
        return self.proc.regs.copy()

    def peekdata(self, addr):
        """PTRACE_PEEKDATA: one word of tracee memory."""
        self.peek_calls += 1
        self.words_read += 1
        self._charge(self.costs.ptrace_peek, 1)
        return self.proc.memory.read(addr)

    def readv(self, addr, nwords):
        """process_vm_readv: a block of tracee memory in one round trip."""
        self.readv_calls += 1
        self.words_read += nwords
        self._charge(self.costs.readv_base, nwords)
        return self.proc.memory.read_block(addr, nwords)

    def read_cstr(self, addr, max_slots=256):
        """Read a NUL-terminated string via chunked readv."""
        chars = []
        chunk = 32
        offset = 0
        while offset < max_slots:
            words = self.readv(addr + offset * WORD, chunk)
            for word in words:
                if word == 0:
                    return "".join(chars)
                chars.append(chr(word & 0x10FFFF))
            offset += chunk
        return "".join(chars)

    def read_vector(self, addr, max_entries=32):
        """Read a NULL-terminated pointer vector via readv."""
        words = self.readv(addr, max_entries)
        out = []
        for word in words:
            if word == 0:
                break
            out.append(word)
        return out

    def kill_tracee(self, reason):
        """Terminate the tracee (the monitor's verdict on a violation)."""
        self.proc.kill(reason)
