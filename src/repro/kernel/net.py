"""A simulated socket layer.

Connections are injected by workload generators (the wrk / dkftpbench
stand-ins) through a *backlog provider* attached to the network stack: when
the application calls ``accept``/``accept4``, the kernel asks the provider
for the next pending connection on that listening socket.  Byte counters on
the stack are the ground truth for the throughput numbers in Table 3.
"""

from dataclasses import dataclass, field

AF_INET = 2
SOCK_STREAM = 1
SOCK_DGRAM = 2


class _BacklogWait:
    """Sentinel a backlog provider returns to mean "no connection *yet*".

    ``None`` keeps its historical meaning — the workload is exhausted and
    accept should fail — while ``BACKLOG_WAIT`` tells a scheduling kernel
    to park the accepting process until the provider has more to give
    (e.g. a concurrency-capped workload waiting for in-flight requests to
    finish).
    """

    def __repr__(self):
        return "BACKLOG_WAIT"


BACKLOG_WAIT = _BacklogWait()


@dataclass
class Connection:
    """One accepted connection: an inbox the app reads, byte counters out.

    The workload generator owns the inbox (client->server bytes).  Data the
    server sends back is *counted*, and a bounded prefix is retained for
    protocol-level assertions in tests.
    """

    peer_port: int = 0
    peer_host: int = 0x7F000001
    inbox: bytes = b""
    bytes_out: int = 0
    out_prefix: bytes = b""
    closed: bool = False
    #: optional callback fired on every server write (request pacing)
    on_server_write: object = None

    _OUT_KEEP = 4096

    def deliver(self, data):
        """Client -> server bytes."""
        self.inbox += bytes(data)

    def take(self, count):
        """Server reads up to ``count`` client bytes."""
        chunk = self.inbox[:count]
        self.inbox = self.inbox[count:]
        return chunk

    def server_write(self, data_len, prefix=b""):
        """Server -> client accounting; fires the workload pacing callback."""
        self.bytes_out += data_len
        if len(self.out_prefix) < self._OUT_KEEP:
            self.out_prefix += bytes(prefix[: self._OUT_KEEP - len(self.out_prefix)])
        if self.on_server_write is not None:
            self.on_server_write(self, data_len, bytes(prefix))


@dataclass
class Socket:
    """A socket object behind an fd."""

    domain: int = AF_INET
    type: int = SOCK_STREAM
    protocol: int = 0
    bound_port: int = 0
    listening: bool = False
    backlog: int = 0
    connection: Connection = None  # set on accepted-connection sockets
    connected_port: int = 0  # set by connect()
    #: connections pulled from the provider while probing readiness but not
    #: yet returned by accept (the listen backlog proper)
    pending: list = field(default_factory=list)


class NetStack:
    """Global network state: listeners, counters, the backlog provider."""

    def __init__(self):
        self.listeners = {}  # port -> Socket
        self.bytes_sent = 0
        self.bytes_received = 0
        self.accepted = 0
        #: callable(listening_socket) -> Connection | None
        self.backlog_provider = None

    def bind(self, sock, port):
        if port in self.listeners and self.listeners[port] is not sock:
            return False
        sock.bound_port = port
        return True

    def listen(self, sock, backlog):
        sock.listening = True
        sock.backlog = backlog
        if sock.bound_port:
            self.listeners[sock.bound_port] = sock
        return True

    def next_connection(self, sock):
        """Ask the workload for the next pending connection (or None)."""
        if sock.pending:
            self.accepted += 1
            return sock.pending.pop(0)
        if self.backlog_provider is None:
            return None
        conn = self.backlog_provider(sock)
        if conn is None or conn is BACKLOG_WAIT:
            return None
        self.accepted += 1
        return conn

    def poll_backlog(self, sock):
        """Probe the backlog without consuming it: 'ready'|'later'|'done'.

        A pulled connection is stashed on ``sock.pending`` so the following
        ``accept`` returns exactly what the poll saw.
        """
        if sock.pending:
            return "ready"
        if self.backlog_provider is None:
            return "done"
        conn = self.backlog_provider(sock)
        if conn is BACKLOG_WAIT:
            return "later"
        if conn is None:
            return "done"
        sock.pending.append(conn)
        return "ready"

    def account_send(self, nbytes):
        self.bytes_sent += nbytes

    def account_recv(self, nbytes):
        self.bytes_received += nbytes
