"""A simulated socket layer.

Connections are injected by workload generators (the wrk / dkftpbench
stand-ins) through a *backlog provider* attached to the network stack: when
the application calls ``accept``/``accept4``, the kernel asks the provider
for the next pending connection on that listening socket.  Byte counters on
the stack are the ground truth for the throughput numbers in Table 3.

Event multiplexing lives here too: :class:`Epoll` is the kernel object
behind ``epoll_create1``/``epoll_ctl``/``epoll_wait``.  Readiness is
level-triggered and push-maintained — connections notify the epoll
instances watching them when bytes arrive or the peer closes, so a
10k-entry interest set never needs a per-fd scan on ``epoll_wait``.
"""

import itertools
from dataclasses import dataclass, field

AF_INET = 2
SOCK_STREAM = 1
SOCK_DGRAM = 2

#: ``accept4`` flag: the returned connection socket starts nonblocking
SOCK_NONBLOCK = 0o4000

# epoll event bits / control ops (Linux values)
EPOLLIN = 0x1
EPOLLOUT = 0x4
EPOLLHUP = 0x10
EPOLL_CTL_ADD = 1
EPOLL_CTL_DEL = 2
EPOLL_CTL_MOD = 3


class _BacklogWait:
    """Sentinel a backlog provider returns to mean "no connection *yet*".

    ``None`` keeps its historical meaning — the workload is exhausted and
    accept should fail — while ``BACKLOG_WAIT`` tells a scheduling kernel
    to park the accepting process until the provider has more to give
    (e.g. a concurrency-capped workload waiting for in-flight requests to
    finish).
    """

    def __repr__(self):
        return "BACKLOG_WAIT"


BACKLOG_WAIT = _BacklogWait()


class Connection:
    """One accepted connection: an inbox the app reads, byte counters out.

    The workload generator owns the inbox (client->server bytes).  Data the
    server sends back is *counted*, and a bounded prefix is retained for
    protocol-level assertions in tests.

    Every connection carries a process-wide monotonic ``serial`` so that
    per-connection bookkeeping (workload budgets, latency maps) can key on
    an identifier that is never reused — unlike ``id()``, which the
    allocator recycles after garbage collection.
    """

    _OUT_KEEP = 4096
    _serials = itertools.count(1)

    def __init__(
        self,
        peer_port=0,
        peer_host=0x7F000001,
        inbox=b"",
        bytes_out=0,
        out_prefix=b"",
        closed=False,
        on_server_write=None,
    ):
        self.serial = next(Connection._serials)
        self.peer_port = peer_port
        self.peer_host = peer_host
        self.inbox = inbox
        self.bytes_out = bytes_out
        self.out_prefix = out_prefix
        self._closed = closed
        #: optional callback fired on every server write (request pacing)
        self.on_server_write = on_server_write
        #: epoll instances watching this connection: [(epoll, fd)]
        self._watchers = []

    @property
    def closed(self):
        return self._closed

    @closed.setter
    def closed(self, value):
        value = bool(value)
        became_closed = value and not self._closed
        self._closed = value
        if became_closed:
            self._notify_watchers()

    def add_watcher(self, epoll, fd):
        self._watchers.append((epoll, fd))

    def remove_watcher(self, epoll, fd):
        try:
            self._watchers.remove((epoll, fd))
        except ValueError:
            pass

    def _notify_watchers(self):
        for epoll, fd in self._watchers:
            epoll.mark_ready(fd)

    def deliver(self, data):
        """Client -> server bytes; wakes any epoll watching this fd."""
        self.inbox += bytes(data)
        if self.inbox:
            self._notify_watchers()

    def take(self, count):
        """Server reads up to ``count`` client bytes."""
        chunk = self.inbox[:count]
        self.inbox = self.inbox[count:]
        return chunk

    def server_write(self, data_len, prefix=b""):
        """Server -> client accounting; fires the workload pacing callback."""
        self.bytes_out += data_len
        if len(self.out_prefix) < self._OUT_KEEP:
            self.out_prefix += bytes(prefix[: self._OUT_KEEP - len(self.out_prefix)])
        if self.on_server_write is not None:
            self.on_server_write(self, data_len, bytes(prefix))


@dataclass
class Socket:
    """A socket object behind an fd."""

    domain: int = AF_INET
    type: int = SOCK_STREAM
    protocol: int = 0
    bound_port: int = 0
    listening: bool = False
    backlog: int = 0
    connection: Connection = None  # set on accepted-connection sockets
    connected_port: int = 0  # set by connect()
    #: O_NONBLOCK / SOCK_NONBLOCK: reads and accepts return -EAGAIN instead
    #: of blocking
    nonblocking: bool = False
    #: connections pulled from the provider while probing readiness but not
    #: yet returned by accept (the listen backlog proper)
    pending: list = field(default_factory=list)


class Epoll:
    """One ``epoll_create1`` instance: an interest set plus a ready list.

    The design target is the C10k steady state — ~10k registered
    connection fds with only a handful ready per ``epoll_wait``.  Readiness
    is therefore *push-maintained*: :meth:`Connection.deliver` and the
    ``closed`` transition mark the watching fd ready, and :meth:`poll` only
    walks the ready candidates (plus the O(#listeners) listening sockets,
    whose backlog is pull-based by construction).  Level-triggered
    semantics come from validating each candidate against live state at
    harvest time: a drained fd silently leaves the ready list, a
    still-readable one stays until consumed.

    An fd closed without ``EPOLL_CTL_DEL`` is detected at harvest (the
    fd table no longer maps it to the registered socket) and dropped,
    mirroring the kernel's automatic removal of closed fds.
    """

    def __init__(self):
        #: fd -> (socket, event mask, user data)
        self._interest = {}
        #: listening fds (their readiness is polled, not pushed)
        self._listeners = {}
        #: ready *candidates*: insertion-ordered fd set, validated lazily
        self._ready = {}
        self.stale_drops = 0

    def __len__(self):
        return len(self._interest)

    def watches(self, fd):
        return fd in self._interest

    def add(self, fd, sock, mask, data):
        if fd in self._interest:
            return False
        self._interest[fd] = (sock, mask, data)
        if sock.listening:
            self._listeners[fd] = sock
        else:
            conn = sock.connection
            if conn is not None:
                conn.add_watcher(self, fd)
                # level-triggered: readable-at-registration fds fire without
                # waiting for the next deliver()
                if conn.inbox or conn.closed:
                    self._ready[fd] = True
        if mask & EPOLLOUT:
            self._ready[fd] = True
        return True

    def modify(self, fd, mask, data):
        entry = self._interest.get(fd)
        if entry is None:
            return False
        sock = entry[0]
        self._interest[fd] = (sock, mask, data)
        # re-evaluate lazily at the next harvest
        self._ready[fd] = True
        return True

    def remove(self, fd):
        entry = self._interest.pop(fd, None)
        if entry is None:
            return False
        self._listeners.pop(fd, None)
        self._ready.pop(fd, None)
        conn = entry[0].connection
        if conn is not None:
            conn.remove_watcher(self, fd)
        return True

    def mark_ready(self, fd):
        """Push notification from a watched connection."""
        if fd in self._interest:
            self._ready[fd] = True

    def _events_for(self, sock, mask):
        conn = sock.connection
        if conn is None:
            return 0
        events = 0
        if conn.closed:
            # hangup is reported regardless of the subscribed mask, and a
            # close with residual inbox bytes stays readable (read drains
            # the bytes, then returns 0)
            events |= EPOLLHUP | (EPOLLIN & mask)
        else:
            if conn.inbox:
                events |= EPOLLIN & mask
            events |= EPOLLOUT & mask
        return events

    def poll(self, net, fdtable, maxevents):
        """Harvest up to ``maxevents`` ready ``(fd, events, data)`` triples.

        Cost is O(#listeners + #ready candidates), never O(#interest).
        """
        for fd, sock in self._listeners.items():
            if fd not in self._ready and net.poll_backlog(sock) == "ready":
                self._ready[fd] = True
        if not self._ready:
            return []
        out = []
        drop = []
        for fd in self._ready:
            entry = self._interest.get(fd)
            if entry is None or fdtable.get(fd) is not entry[0]:
                # closed without EPOLL_CTL_DEL: auto-remove, like the kernel
                drop.append((fd, True))
                self.stale_drops += 1
                continue
            sock, mask, data = entry
            if sock.listening:
                ready = bool(sock.pending) or net.poll_backlog(sock) == "ready"
                events = EPOLLIN & mask if ready else 0
            else:
                events = self._events_for(sock, mask)
            if events:
                out.append((fd, events, data))
                if len(out) >= maxevents:
                    break
            else:
                drop.append((fd, False))
        for fd, stale in drop:
            self._ready.pop(fd, None)
            if stale:
                self._interest.pop(fd, None)
                self._listeners.pop(fd, None)
        return out


class NetStack:
    """Global network state: listeners, counters, the backlog provider."""

    def __init__(self):
        self.listeners = {}  # port -> Socket
        self.bytes_sent = 0
        self.bytes_received = 0
        self.accepted = 0
        #: callable(listening_socket) -> Connection | None
        self.backlog_provider = None

    def bind(self, sock, port):
        if port in self.listeners and self.listeners[port] is not sock:
            return False
        sock.bound_port = port
        return True

    def listen(self, sock, backlog):
        sock.listening = True
        sock.backlog = backlog
        if sock.bound_port:
            self.listeners[sock.bound_port] = sock
        return True

    def next_connection(self, sock):
        """Ask the workload for the next pending connection (or None)."""
        if sock.pending:
            self.accepted += 1
            return sock.pending.pop(0)
        if self.backlog_provider is None:
            return None
        conn = self.backlog_provider(sock)
        if conn is None or conn is BACKLOG_WAIT:
            return None
        self.accepted += 1
        return conn

    def poll_backlog(self, sock):
        """Probe the backlog without consuming it: 'ready'|'later'|'done'.

        A pulled connection is stashed on ``sock.pending`` so the following
        ``accept`` returns exactly what the poll saw.
        """
        if sock.pending:
            return "ready"
        if self.backlog_provider is None:
            return "done"
        conn = self.backlog_provider(sock)
        if conn is BACKLOG_WAIT:
            return "later"
        if conn is None:
            return "done"
        sock.pending.append(conn)
        return "ready"

    def account_send(self, nbytes):
        self.bytes_sent += nbytes

    def account_recv(self, nbytes):
        self.bytes_received += nbytes
