"""The explicit syscall dispatch pipeline (``repro.kernel.dispatch``).

The seed threaded the syscall hot path ad-hoc through ``Kernel.dispatch``:
scheduler blocking, counting, seccomp, the trace stop, verdict enforcement,
the handler, and accounting were interleaved inline, and every protection
mechanism hooked in through its own special case.  This module makes the
path explicit: an ordered sequence of **stages**,

    block -> count -> seccomp -> trace_stop -> verify -> execute -> account

each a plain callable over one :class:`SyscallContext`.  The kernel
installs its canonical handlers; a :class:`~repro.mechanisms.base.
ProtectionMechanism` adds hooks with :meth:`DispatchPipeline.insert`
(rank-ordered, so a mechanism can never scramble the sequence), and the
pipeline attributes every stage's cycle delta to the kernel's telemetry
bus — the ``python -m repro.bench stages`` breakdown falls out of that for
free.

Stage semantics (behavior-identical to the seed's inline path):

- **block** — under a scheduler, raise ``WouldBlock`` for a syscall that
  cannot complete yet; runs *before* count/seccomp so a parked-and-
  restarted syscall is counted, filtered, and trace-stopped exactly once.
- **count** — per-process and bus-global syscall counters.
- **seccomp** — evaluate the attached filters; KILL raises, ERRNO
  short-circuits (``ctx.done``), TRACE/TRAP marks ``ctx.trace``.
- **trace_stop** — stop into the tracer and charge the context-switch
  round trip (batched on the monitor fast path).
- **verify** — enforce the tracer's verdict: re-raise the pending
  ``SyscallIntegrityViolation`` of a tracee the monitor killed.
- **execute** — run the syscall handler; sets ``ctx.result``.
- **account** — emit the structured per-dispatch telemetry event.
"""

from dataclasses import dataclass, field

from repro.errors import KernelError

#: canonical stage sequence; install order must respect these ranks
STAGE_ORDER = (
    "block",
    "count",
    "seccomp",
    "trace_stop",
    "verify",
    "execute",
    "account",
)

_RANK = {name: index for index, name in enumerate(STAGE_ORDER)}


class StageOrderError(KernelError):
    """A stage was installed out of canonical order (or is unknown)."""


@dataclass
class SyscallContext:
    """Everything one in-flight syscall dispatch carries between stages."""

    proc: object
    name: str
    args: object
    #: seccomp said TRACE/TRAP: the trace_stop stage must fire
    trace: bool = False
    #: the tracer resolved the stop on its fast path (batched trap cost)
    fast: bool = False
    #: the syscall's return value once decided
    result: object = None
    #: short-circuit: skip every remaining stage except account
    done: bool = False
    #: dispatch outcome ('allow' | 'errno' | 'kill' | 'violation')
    verdict: str = "allow"
    #: ledger cycle count when the dispatch entered the pipeline
    start_cycles: int = 0
    #: scratch space for mechanism hooks
    extra: dict = field(default_factory=dict)

    def short_circuit(self, result, verdict):
        """Decide the syscall here; remaining stages (bar account) skip."""
        self.result = result
        self.verdict = verdict
        self.done = True
        return result


class DispatchPipeline:
    """Ordered, pluggable syscall stages with per-stage cycle telemetry."""

    def __init__(self, bus):
        self.bus = bus
        self._stages = []  # [(stage_name, callable), ...] in rank order

    def __len__(self):
        return len(self._stages)

    @property
    def stages(self):
        """The installed ``(stage, callable)`` sequence, in run order."""
        return tuple(self._stages)

    def stage_names(self):
        return tuple(stage for stage, _fn in self._stages)

    @staticmethod
    def _rank_of(stage):
        rank = _RANK.get(stage)
        if rank is None:
            raise StageOrderError(
                "unknown stage %r (expected one of %s)"
                % (stage, ", ".join(STAGE_ORDER))
            )
        return rank

    def install(self, stage, fn):
        """Append a stage handler; raises unless canonical order is kept.

        This is the strict builder the kernel uses for its own stages:
        installing ``verify`` and then ``seccomp`` is a programming error
        and raises :class:`StageOrderError`.
        """
        rank = self._rank_of(stage)
        if self._stages:
            last_stage = self._stages[-1][0]
            if rank < _RANK[last_stage]:
                raise StageOrderError(
                    "cannot install %r after %r: pipeline order is %s"
                    % (stage, last_stage, " -> ".join(STAGE_ORDER))
                )
        self._stages.append((stage, fn))
        return fn

    def insert(self, stage, fn):
        """Insert a hook at its canonical position (mechanism entry point).

        The hook runs *after* every already-installed handler of the same
        stage (and of earlier stages), keeping the sequence valid no
        matter when a mechanism attaches.
        """
        rank = self._rank_of(stage)
        index = len(self._stages)
        for i, (existing, _fn) in enumerate(self._stages):
            if _RANK[existing] > rank:
                index = i
                break
        self._stages.insert(index, (stage, fn))
        return fn

    def remove(self, fn):
        """Uninstall a previously-installed handler (by identity)."""
        self._stages = [(s, f) for s, f in self._stages if f is not fn]

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def run(self, ctx):
        """Drive ``ctx`` through every stage; returns the syscall result.

        Each stage's ledger delta is attributed to the bus under
        ``stage.cycles.<stage>`` — including when the stage raises (a
        seccomp KILL's cycles still land on the seccomp stage).  A stage
        that sets ``ctx.done`` skips everything after it except account.
        """
        ledger = ctx.proc.ledger
        bus = self.bus
        ctx.start_cycles = ledger.cycles
        for stage, fn in self._stages:
            if ctx.done and stage != "account":
                continue
            before = ledger.cycles
            try:
                fn(ctx)
            finally:
                delta = ledger.cycles - before
                if delta:
                    bus.count("stage.cycles." + stage, delta)
        return ctx.result
