"""The explicit syscall dispatch pipeline (``repro.kernel.dispatch``).

The seed threaded the syscall hot path ad-hoc through ``Kernel.dispatch``:
scheduler blocking, counting, seccomp, the trace stop, verdict enforcement,
the handler, and accounting were interleaved inline, and every protection
mechanism hooked in through its own special case.  This module makes the
path explicit: an ordered sequence of **stages**,

    block -> count -> seccomp -> trace_stop -> verify -> execute -> account

each a plain callable over one :class:`SyscallContext`.  The kernel
installs its canonical handlers; a :class:`~repro.mechanisms.base.
ProtectionMechanism` adds hooks with :meth:`DispatchPipeline.insert`
(rank-ordered, so a mechanism can never scramble the sequence), and the
pipeline attributes every stage's cycle delta to the kernel's telemetry
bus — the ``python -m repro.bench stages`` breakdown falls out of that for
free.

Stage semantics (behavior-identical to the seed's inline path):

- **block** — under a scheduler, raise ``WouldBlock`` for a syscall that
  cannot complete yet; runs *before* count/seccomp so a parked-and-
  restarted syscall is counted, filtered, and trace-stopped exactly once.
- **count** — per-process and bus-global syscall counters.
- **seccomp** — evaluate the attached filters; KILL raises, ERRNO
  short-circuits (``ctx.done``), TRACE/TRAP marks ``ctx.trace``.
- **trace_stop** — stop into the tracer and charge the context-switch
  round trip (batched on the monitor fast path).
- **verify** — enforce the tracer's verdict: re-raise the pending
  ``SyscallIntegrityViolation`` of a tracee the monitor killed.
- **execute** — run the syscall handler; sets ``ctx.result``.
- **account** — emit the structured per-dispatch telemetry event.
"""

from dataclasses import dataclass, field

from repro.errors import KernelError

#: canonical stage sequence; install order must respect these ranks
STAGE_ORDER = (
    "block",
    "count",
    "seccomp",
    "trace_stop",
    "verify",
    "execute",
    "account",
)

_RANK = {name: index for index, name in enumerate(STAGE_ORDER)}

#: the stage run the pipeline may collapse into one fused call
_FUSED_PREFIX = ("block", "count", "seccomp")


class StageOrderError(KernelError):
    """A stage was installed out of canonical order (or is unknown)."""


def cycle_free(fn):
    """Mark a stage handler as charging no ledger cycles.

    Only handlers carrying this mark are eligible for the fused fast path:
    the fused call attributes its whole ledger delta to the *last* fused
    stage, which is only identical to the unfused walk when every earlier
    fused handler is cycle-free.  The kernel's own ``block`` and ``count``
    handlers qualify (telemetry counters are free in the cost model).
    """
    fn.cycle_free = True
    return fn


def trace_only(fn):
    """Mark a stage handler as a no-op unless ``ctx.trace`` is set.

    The run loop skips marked handlers outright on untraced dispatches,
    saving the call and the ledger-delta bookkeeping on the hot path.
    This is a wall-clock-only optimization: a marked handler must behave
    identically to an unmarked one that begins with
    ``if not ctx.trace: return``.  The kernel's ``trace_stop`` and
    ``verify`` stages qualify; mechanism hooks are unmarked and always
    run.
    """
    fn.trace_only = True
    return fn


@dataclass
class SyscallContext:
    """Everything one in-flight syscall dispatch carries between stages."""

    proc: object
    name: str
    args: object
    #: seccomp said TRACE/TRAP: the trace_stop stage must fire
    trace: bool = False
    #: the tracer resolved the stop on its fast path (batched trap cost)
    fast: bool = False
    #: the syscall's return value once decided
    result: object = None
    #: short-circuit: skip every remaining stage except account
    done: bool = False
    #: dispatch outcome ('allow' | 'errno' | 'kill' | 'violation')
    verdict: str = "allow"
    #: ledger cycle count when the dispatch entered the pipeline
    start_cycles: int = 0
    #: scratch space for mechanism hooks
    extra: dict = field(default_factory=dict)

    def short_circuit(self, result, verdict):
        """Decide the syscall here; remaining stages (bar account) skip."""
        self.result = result
        self.verdict = verdict
        self.done = True
        return result


def _fuse(block_fn, count_fn, seccomp_fn):
    """One callable running the fused head with the walk's done-checks."""

    def fused(ctx):
        block_fn(ctx)
        if not ctx.done:
            count_fn(ctx)
        if not ctx.done:
            seccomp_fn(ctx)

    return fused


class DispatchPipeline:
    """Ordered, pluggable syscall stages with per-stage cycle telemetry."""

    def __init__(self, bus):
        self.bus = bus
        self._stages = []  # [(stage_name, callable), ...] in rank order
        #: wall-clock-only switch; False forces the unfused reference walk
        self._fusion_enabled = True
        #: [(stage, counter_key, callable)], possibly with a fused head
        self._plan = []
        self._fused = False

    def __len__(self):
        return len(self._stages)

    @property
    def stages(self):
        """The installed ``(stage, callable)`` sequence, in run order."""
        return tuple(self._stages)

    def stage_names(self):
        return tuple(stage for stage, _fn in self._stages)

    @staticmethod
    def _rank_of(stage):
        rank = _RANK.get(stage)
        if rank is None:
            raise StageOrderError(
                "unknown stage %r (expected one of %s)"
                % (stage, ", ".join(STAGE_ORDER))
            )
        return rank

    def install(self, stage, fn):
        """Append a stage handler; raises unless canonical order is kept.

        This is the strict builder the kernel uses for its own stages:
        installing ``verify`` and then ``seccomp`` is a programming error
        and raises :class:`StageOrderError`.
        """
        rank = self._rank_of(stage)
        if self._stages:
            last_stage = self._stages[-1][0]
            if rank < _RANK[last_stage]:
                raise StageOrderError(
                    "cannot install %r after %r: pipeline order is %s"
                    % (stage, last_stage, " -> ".join(STAGE_ORDER))
                )
        self._stages.append((stage, fn))
        self._rebuild_plan()
        return fn

    def insert(self, stage, fn):
        """Insert a hook at its canonical position (mechanism entry point).

        The hook runs *after* every already-installed handler of the same
        stage (and of earlier stages), keeping the sequence valid no
        matter when a mechanism attaches.
        """
        rank = self._rank_of(stage)
        index = len(self._stages)
        for i, (existing, _fn) in enumerate(self._stages):
            if _RANK[existing] > rank:
                index = i
                break
        self._stages.insert(index, (stage, fn))
        self._rebuild_plan()
        return fn

    def remove(self, fn):
        """Uninstall a previously-installed handler (by identity)."""
        self._stages = [(s, f) for s, f in self._stages if f is not fn]
        self._rebuild_plan()

    # ------------------------------------------------------------------
    # the fused fast path
    # ------------------------------------------------------------------

    @property
    def fused(self):
        """True when the block→count→seccomp head runs as one fused call."""
        return self._fused

    def set_fusion(self, enabled):
        """Enable/disable fusion (tests use this to diff the two walks)."""
        self._fusion_enabled = bool(enabled)
        self._rebuild_plan()

    def _rebuild_plan(self):
        """Precompute the run plan: counter keys, and the fused head.

        The head fuses exactly when the first three installed handlers are
        the canonical ``block``, ``count``, ``seccomp`` singletons — i.e.
        no mechanism hook sits between them (``insert`` lands a hook after
        its stage's handlers, so a hook at ``block`` or ``count`` breaks
        the prefix and de-fuses) — and the non-final fused handlers are
        marked :func:`cycle_free`.  Attribution is unchanged: block and
        count charge nothing, so the fused delta is the seccomp delta.
        """
        stages = self._stages
        fused = False
        if self._fusion_enabled and len(stages) >= 3:
            head = tuple(stage for stage, _fn in stages[:3])
            fused = (
                head == _FUSED_PREFIX
                and getattr(stages[0][1], "cycle_free", False)
                and getattr(stages[1][1], "cycle_free", False)
            )
        plan = []
        if fused:
            plan.append(
                (
                    "block",
                    "stage.cycles.seccomp",
                    _fuse(stages[0][1], stages[1][1], stages[2][1]),
                    False,
                )
            )
            rest = stages[3:]
        else:
            rest = stages
        for stage, fn in rest:
            plan.append(
                (
                    stage,
                    "stage.cycles." + stage,
                    fn,
                    getattr(fn, "trace_only", False),
                )
            )
        self._plan = plan
        self._fused = fused

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def run(self, ctx):
        """Drive ``ctx`` through every stage; returns the syscall result.

        Each stage's ledger delta is attributed to the bus under
        ``stage.cycles.<stage>`` — including when the stage raises (a
        seccomp KILL's cycles still land on the seccomp stage).  A stage
        that sets ``ctx.done`` skips everything after it except account.

        Runs the precomputed plan: counter keys are interned at plan-build
        time and the canonical block→count→seccomp head may be fused into
        one call (see :meth:`_rebuild_plan`) — both wall-clock-only
        optimizations with attribution identical to the reference walk.
        """
        ledger = ctx.proc.ledger
        counters = self.bus.counters
        ctx.start_cycles = ledger.cycles
        for stage, key, fn, needs_trace in self._plan:
            if ctx.done and stage != "account":
                continue
            if needs_trace and not ctx.trace:
                continue
            before = ledger.cycles
            try:
                fn(ctx)
            finally:
                delta = ledger.cycles - before
                if delta:
                    counters[key] = counters.get(key, 0) + delta
        return ctx.result
