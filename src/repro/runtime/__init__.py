"""The BASTION runtime library (the paper's §6.3.2 / Table 2 API).

The library maintains, *inside the protected application's address space*,
an open-addressing shadow-memory hash table holding:

- the shadow copy (last legitimate value) of every sensitive variable, and
- per-callsite argument bindings (which address/constant feeds which
  argument position).

The application-side half (:class:`repro.runtime.bastion_rt.BastionRuntime`)
is driven by the compiler-inserted ``ctx_write_mem`` / ``ctx_bind_mem_X`` /
``ctx_bind_const_X`` intrinsics.  The monitor-side half reads the same
region through ptrace (:class:`repro.runtime.shadow_table.ShadowTableReader`)
— it shares only the *layout*, never Python object state, preserving the
process boundary.
"""

from repro.runtime.shadow_table import (
    ShadowTableLayout,
    ShadowTable,
    ShadowTableReader,
    BIND_EMPTY,
    BIND_MEM,
    BIND_CONST,
    COPIES_LAYOUT,
    BINDINGS_LAYOUT,
)
from repro.runtime.bastion_rt import BastionRuntime

__all__ = [
    "ShadowTableLayout",
    "ShadowTable",
    "ShadowTableReader",
    "BastionRuntime",
    "BIND_EMPTY",
    "BIND_MEM",
    "BIND_CONST",
    "COPIES_LAYOUT",
    "BINDINGS_LAYOUT",
]
