"""Open-addressing shadow-memory tables laid out in simulated memory.

§7.1: "It is an open-addressing hash table maintaining a shadow copy (i.e.,
legitimate value) of a sensitive variable and argument binding information
... The key to access this hash table data is an address."

Two tables share the shadow region:

- the **copies** table: ``variable address -> shadow copy`` (2-word entries);
- the **bindings** table: ``callsite address -> 6 x (kind, payload)``
  argument-binding records (14-word entries).

Both the application-side writer (:class:`ShadowTable`) and the monitor-side
reader (:class:`ShadowTableReader`) derive slot addresses from the same
:class:`ShadowTableLayout`, so the monitor can find entries using nothing
but ``process_vm_readv`` — no shared Python state.
"""

from dataclasses import dataclass

from repro.errors import ReproError
from repro.vm.loader import SHADOW_BASE
from repro.vm.memory import WORD

#: binding kinds stored in entry slots
BIND_EMPTY = 0
BIND_MEM = 1
BIND_CONST = 2

_HASH_MULT = 2654435761  # Knuth multiplicative hashing


@dataclass(frozen=True)
class ShadowTableLayout:
    """Geometry of one table inside the shadow region."""

    base: int
    capacity: int  # number of entries; power of two
    entry_words: int  # words per entry, including the key word

    def __post_init__(self):
        if self.capacity & (self.capacity - 1):
            raise ReproError("shadow table capacity must be a power of two")

    def entry_addr(self, slot):
        return self.base + slot * self.entry_words * WORD

    def probe_sequence(self, key):
        """Linear-probe slot order for ``key`` (addresses are word-aligned)."""
        start = ((key >> 3) * _HASH_MULT) & (self.capacity - 1)
        for i in range(self.capacity):
            yield (start + i) & (self.capacity - 1)


#: shadow copies: 32Ki entries x (key, value)
COPIES_LAYOUT = ShadowTableLayout(SHADOW_BASE, 1 << 15, 2)
#: argument bindings: 4Ki entries x (key, argmask, 6 x (kind, payload))
BINDINGS_LAYOUT = ShadowTableLayout(SHADOW_BASE + (1 << 21), 1 << 12, 2 + 12)


class ShadowTable:
    """Application-side writer over a layout (used by the runtime library)."""

    def __init__(self, memory, layout):
        self.memory = memory
        self.layout = layout

    def _find_slot(self, key, create):
        for slot in self.layout.probe_sequence(key):
            addr = self.layout.entry_addr(slot)
            existing = self.memory.read(addr)
            if existing == key:
                return addr
            if existing == 0:
                if create:
                    self.memory.write(addr, key)
                    return addr
                return None
        raise ReproError("shadow table full (capacity %d)" % self.layout.capacity)

    def put(self, key, values):
        """Write entry payload words for ``key`` (creating the entry)."""
        if key == 0:
            raise ReproError("shadow table key must be nonzero")
        addr = self._find_slot(key, create=True)
        for i, value in enumerate(values, start=1):
            self.memory.write(addr + i * WORD, value)
        return addr

    def get(self, key):
        """Payload words for ``key``, or None."""
        addr = self._find_slot(key, create=False)
        if addr is None:
            return None
        return self.memory.read_block(addr + WORD, self.layout.entry_words - 1)

    def update_word(self, key, offset, value):
        """Write one payload word at ``offset`` (1-based past the key)."""
        addr = self._find_slot(key, create=True)
        self.memory.write(addr + offset * WORD, value)
        return addr


class ShadowTableReader:
    """Monitor-side reader: same probing, but through a read callback.

    ``read_block(addr, nwords)`` is typically ``PtraceHandle.readv`` — every
    probe is a real cross-process read with its cycle cost.
    """

    MAX_PROBES = 64

    def __init__(self, read_block, layout):
        self.read_block = read_block
        self.layout = layout

    def get(self, key):
        """Payload words for ``key``, or None if absent."""
        probes = 0
        for slot in self.layout.probe_sequence(key):
            probes += 1
            if probes > self.MAX_PROBES:
                return None
            addr = self.layout.entry_addr(slot)
            words = self.read_block(addr, self.layout.entry_words)
            if words[0] == key:
                return words[1:]
            if words[0] == 0:
                return None
        return None
