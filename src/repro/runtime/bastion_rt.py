"""Application-side BASTION runtime: the Table 2 API.

Compiler-inserted intrinsics call into this object (conceptually, the
inlined runtime-library functions of §8):

- ``ctx_write_mem(p, size)`` — refresh the shadow copies of ``size`` slots
  starting at ``p`` with their *current* (legitimate-at-this-point) values;
- ``ctx_bind_mem_X(p)`` — record that the X-th argument of the upcoming
  callsite is backed by memory at ``p``;
- ``ctx_bind_const_X(c)`` — record that the X-th argument is the constant
  ``c``.

At launch the monitor also calls :meth:`initialize_globals` to seed shadow
copies of statically-identified sensitive globals (string constants such as
an ``execve`` path live here before any instrumented store runs).
"""

from repro.runtime.shadow_table import (
    BIND_CONST,
    BIND_MEM,
    BINDINGS_LAYOUT,
    COPIES_LAYOUT,
    ShadowTable,
)
from repro.vm.memory import WORD


class BastionRuntime:
    """The per-process runtime state behind the ``ctx_*`` intrinsics."""

    MAX_ARGS = 6

    def __init__(self, proc):
        self.proc = proc
        self.copies = ShadowTable(proc.memory, COPIES_LAYOUT)
        self.bindings = ShadowTable(proc.memory, BINDINGS_LAYOUT)
        self.write_count = 0
        self.bind_count = 0
        #: shadow-update listeners (the monitor's verdict cache).  Notified
        #: only when an update *changes* the stored value: a server's steady
        #: state re-binds the same callsite with the same payload on every
        #: iteration, and re-notifying on each would thrash any cache.
        self._listeners = []

    def subscribe(self, listener):
        """Register for ``on_shadow_write(addr)`` / ``on_bind_write(site)``."""
        self._listeners.append(listener)

    # -- Table 2 API ------------------------------------------------------

    def ctx_write_mem(self, addr, size=1):
        """Update the shadow copy of ``size`` slots at ``addr``."""
        memory = self.proc.memory
        for i in range(max(size, 1)):
            slot_addr = addr + i * WORD
            value = memory.read(slot_addr)
            previous = self.copies.get(slot_addr)
            self.copies.put(slot_addr, (value,))
            if previous is None or previous[0] != value:
                for listener in self._listeners:
                    listener.on_shadow_write(slot_addr)
        self.write_count += 1

    def ctx_bind_mem(self, callsite_addr, position, addr):
        """Bind memory at ``addr`` to argument ``position`` of ``callsite``."""
        self._bind(callsite_addr, position, BIND_MEM, addr)

    def ctx_bind_const(self, callsite_addr, position, value):
        """Bind constant ``value`` to argument ``position`` of ``callsite``."""
        self._bind(callsite_addr, position, BIND_CONST, value)

    def _bind(self, callsite_addr, position, kind, payload):
        if not 1 <= position <= self.MAX_ARGS:
            raise ValueError("argument position %d out of range" % position)
        memory = self.proc.memory
        offset = 2 + (position - 1) * 2  # key, argmask, then (kind, payload) pairs
        previous = self.bindings.get(callsite_addr)
        entry = self.bindings.update_word(callsite_addr, offset, kind)
        payload_addr = entry + (offset + 1) * WORD
        memory.write(payload_addr, payload)
        # maintain the bound-argument mask
        mask_addr = entry + WORD
        mask = memory.read(mask_addr)
        memory.write(mask_addr, mask | (1 << (position - 1)))
        self.bind_count += 1
        changed = (
            previous is None
            or previous[offset - 1] != kind
            or previous[offset] != payload
        )
        if changed:
            for listener in self._listeners:
                listener.on_bind_write(callsite_addr)

    # -- launch-time seeding -------------------------------------------------

    def initialize_globals(self, image, global_names):
        """Seed shadow copies for statically-identified sensitive globals."""
        for name in global_names:
            gvar = image.module.globals.get(name)
            if gvar is None:
                continue
            base = image.global_addr[name]
            self.ctx_write_mem(base, gvar.size)
