"""The x86-64 Linux system call table (the subset this simulation implements).

Numbers follow ``arch/x86/entry/syscalls/syscall_64.tbl`` so that metadata,
seccomp-BPF filters, and traces all speak real syscall numbers.  The real
table has 400+ entries; the simulated kernel implements the ones the three
workload applications and the attack catalog exercise, plus enough others
that "not-callable" classification (§3.1) is meaningful.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class SyscallDef:
    """One syscall table entry.

    Attributes:
        nr: the x86-64 syscall number.
        name: the canonical kernel name (``execve``, ``mmap``, ...).
        nargs: how many of the six argument registers are meaningful.
    """

    nr: int
    name: str
    nargs: int


_TABLE = [
    # nr, name, nargs — ordering loosely follows syscall_64.tbl
    (0, "read", 3),
    (1, "write", 3),
    (2, "open", 3),
    (3, "close", 1),
    (4, "stat", 2),
    (5, "fstat", 2),
    (8, "lseek", 3),
    (9, "mmap", 6),
    (10, "mprotect", 3),
    (11, "munmap", 2),
    (12, "brk", 1),
    (13, "rt_sigaction", 4),
    (14, "rt_sigprocmask", 4),
    (16, "ioctl", 3),
    (17, "pread64", 4),
    (18, "pwrite64", 4),
    (19, "readv", 3),
    (20, "writev", 3),
    (21, "access", 2),
    (22, "pipe", 1),
    (23, "select", 5),
    (25, "mremap", 5),
    (28, "madvise", 3),
    (32, "dup", 1),
    (33, "dup2", 2),
    (35, "nanosleep", 2),
    (39, "getpid", 0),
    (40, "sendfile", 4),
    (41, "socket", 3),
    (42, "connect", 3),
    (43, "accept", 3),
    (44, "sendto", 6),
    (45, "recvfrom", 6),
    (48, "shutdown", 2),
    (49, "bind", 3),
    (50, "listen", 2),
    (51, "getsockname", 3),
    (54, "setsockopt", 5),
    (56, "clone", 5),
    (57, "fork", 0),
    (58, "vfork", 0),
    (59, "execve", 3),
    (60, "exit", 1),
    (61, "wait4", 4),
    (62, "kill", 2),
    (63, "uname", 1),
    (72, "fcntl", 3),
    (74, "fsync", 1),
    (76, "truncate", 2),
    (77, "ftruncate", 2),
    (78, "getdents", 3),
    (79, "getcwd", 2),
    (80, "chdir", 1),
    (82, "rename", 2),
    (83, "mkdir", 2),
    (84, "rmdir", 1),
    (85, "creat", 2),
    (87, "unlink", 1),
    (89, "readlink", 3),
    (90, "chmod", 2),
    (92, "chown", 3),
    (95, "umask", 1),
    (96, "gettimeofday", 2),
    (102, "getuid", 0),
    (104, "getgid", 0),
    (105, "setuid", 1),
    (106, "setgid", 1),
    (107, "geteuid", 0),
    (108, "getegid", 0),
    (112, "setsid", 0),
    (113, "setreuid", 2),
    (114, "setregid", 2),
    (137, "statfs", 2),
    (157, "prctl", 5),
    (158, "arch_prctl", 2),
    (186, "gettid", 0),
    (201, "time", 1),
    (202, "futex", 6),
    (216, "remap_file_pages", 5),
    (218, "set_tid_address", 1),
    (228, "clock_gettime", 2),
    (231, "exit_group", 1),
    (232, "epoll_wait", 4),
    (233, "epoll_ctl", 4),
    (257, "openat", 4),
    (262, "newfstatat", 4),
    (263, "unlinkat", 3),
    (281, "epoll_pwait", 6),
    (288, "accept4", 4),
    (290, "eventfd2", 2),
    (291, "epoll_create1", 1),
    (302, "prlimit64", 4),
    (310, "process_vm_readv", 6),
    (311, "process_vm_writev", 6),
    (317, "seccomp", 3),
    (318, "getrandom", 3),
    (322, "execveat", 5),
    (101, "ptrace", 4),
]

SYSCALLS = tuple(SyscallDef(nr, name, nargs) for nr, name, nargs in _TABLE)
SYSCALL_BY_NAME = {s.name: s for s in SYSCALLS}
SYSCALL_BY_NR = {s.nr: s for s in SYSCALLS}

if len(SYSCALL_BY_NAME) != len(SYSCALLS) or len(SYSCALL_BY_NR) != len(SYSCALLS):
    raise AssertionError("duplicate entries in the syscall table")


def nr_of(name):
    """Return the syscall number for ``name``.

    Raises:
        KeyError: if the syscall is not in the simulated table.
    """
    return SYSCALL_BY_NAME[name].nr


def name_of(nr):
    """Return the canonical name for syscall number ``nr``.

    Unknown numbers map to ``"sys_<nr>"`` so traces stay printable even for
    syscalls outside the simulated subset.
    """
    entry = SYSCALL_BY_NR.get(nr)
    return entry.name if entry is not None else "sys_%d" % nr
