"""Sensitive system call classification (the paper's Table 1).

BASTION deeply protects 20 sensitive syscalls, grouped by the attack vector
that commonly abuses them.  §11.2 additionally explores extending protection
to filesystem-related syscalls (Table 7); that extension set lives here too.
"""

import enum

from repro.syscalls.table import nr_of


class AttackVector(enum.Enum):
    """The four abuse categories of Table 1."""

    ARBITRARY_CODE_EXECUTION = "Arbitrary Code Execution"
    MEMORY_PERMISSIONS = "Memory Permissions"
    PRIVILEGE_ESCALATION = "Privilege Escalation"
    NETWORKING = "Networking"


#: Table 1 verbatim: attack vector -> syscall names.
SENSITIVE_BY_CATEGORY = {
    AttackVector.ARBITRARY_CODE_EXECUTION: (
        "execve",
        "execveat",
        "fork",
        "vfork",
        "clone",
        "ptrace",
    ),
    AttackVector.MEMORY_PERMISSIONS: (
        "mprotect",
        "mmap",
        "mremap",
        "remap_file_pages",
    ),
    AttackVector.PRIVILEGE_ESCALATION: (
        "chmod",
        "setuid",
        "setgid",
        "setreuid",
    ),
    AttackVector.NETWORKING: (
        "socket",
        "bind",
        "connect",
        "listen",
        "accept",
        "accept4",
    ),
}

#: Flat, ordered tuple of the 20 sensitive syscall names.
SENSITIVE_SYSCALLS = tuple(
    name for names in SENSITIVE_BY_CATEGORY.values() for name in names
)

if len(SENSITIVE_SYSCALLS) != 20:
    raise AssertionError("Table 1 must contain exactly 20 sensitive syscalls")

#: §11.2 / Table 7: filesystem-related syscalls and variants added when the
#: protection scope is extended to information-disclosure defenses.
FILESYSTEM_EXTENSION = (
    "open",
    "openat",
    "creat",
    "read",
    "pread64",
    "readv",
    "write",
    "pwrite64",
    "writev",
    "sendto",
    "recvfrom",
    "sendfile",
    "close",
    "fstat",
    "stat",
    "lseek",
    "unlink",
    "rename",
)

#: Event-multiplexing syscalls, classified *not* sensitive: they map to
#: none of Table 1's four abuse vectors (no code execution, no memory
#: permission change, no privilege transition, no new network endpoint —
#: an epoll fd only observes readiness of fds obtained through already-
#: protected syscalls like ``accept4``).  They are therefore cheap under
#: BASTION — filtered but never trace-stopped — which is exactly the
#: paper's economics: protect the sensitive choke points, leave the
#: event-loop hot path on the seccomp fast path.  The tuple is kept
#: deliberately *out* of FILESYSTEM_EXTENSION so the §11.2 extended
#: configs keep their filter programs (and cycle counts) unchanged.
EVENT_MULTIPLEXING = (
    "epoll_create1",
    "epoll_ctl",
    "epoll_wait",
    "epoll_pwait",
)

_SENSITIVE_SET = frozenset(SENSITIVE_SYSCALLS)


def is_sensitive(name, extended=False):
    """Return whether syscall ``name`` is in the protected set.

    Args:
        name: syscall name.
        extended: include the §11.2 filesystem extension set.
    """
    if name in _SENSITIVE_SET:
        return True
    return extended and name in FILESYSTEM_EXTENSION


def sensitive_numbers(extended=False):
    """Syscall numbers of the protected set, as a sorted tuple."""
    names = SENSITIVE_SYSCALLS + (FILESYSTEM_EXTENSION if extended else ())
    return tuple(sorted(nr_of(n) for n in names))


def category_of(name):
    """Return the :class:`AttackVector` for a sensitive syscall, else None."""
    for vector, names in SENSITIVE_BY_CATEGORY.items():
        if name in names:
            return vector
    return None
