"""Per-syscall argument typing for the argument-integrity context (§3.3).

The paper distinguishes *direct* arguments (the register value itself is the
argument, e.g. the ``prot`` flag of ``mmap``) from *extended* arguments (one
or more levels of indirection must be checked too, e.g. the ``pathname`` of
``execve``).  §6.3.2 notes this distinction is syscall- and position-specific
and is resolved by the monitor rather than instrumented, because the list of
sensitive syscalls is short.  This module encodes those specialized rules.

It also records the §9.2 fast path: ``accept``/``accept4`` take a
``struct sockaddr`` out-parameter that the monitor verifies in a specialized
way (the pointer is checked, the pointee is kernel-written output and is
exempt from pointee verification).
"""

import enum
from dataclasses import dataclass

from repro.syscalls.sensitive import SENSITIVE_SYSCALLS, FILESYSTEM_EXTENSION


class ArgKind(enum.Enum):
    """How the monitor must verify one argument position."""

    DIRECT = "direct"  # compare the register value itself
    EXTENDED = "extended"  # compare pointer AND pointee memory (string/struct)
    OUT_SOCKADDR = "out_sockaddr"  # §9.2: kernel-written sockaddr fast path
    VECTOR = "vector"  # argv/envp-style NULL-terminated pointer vector


@dataclass(frozen=True)
class ArgSpec:
    """Verification rules for every argument position of one syscall."""

    name: str
    kinds: tuple  # tuple[ArgKind, ...], one per used argument position

    def kind(self, position):
        """Kind for 1-based argument ``position`` (DIRECT past the spec)."""
        if 1 <= position <= len(self.kinds):
            return self.kinds[position - 1]
        return ArgKind.DIRECT


_D = ArgKind.DIRECT
_E = ArgKind.EXTENDED
_S = ArgKind.OUT_SOCKADDR
_V = ArgKind.VECTOR

#: Specialized rules for the sensitive set (plus the filesystem extension).
ARG_SPECS = {
    spec.name: spec
    for spec in (
        # --- arbitrary code execution ---
        ArgSpec("execve", (_E, _V, _V)),
        ArgSpec("execveat", (_D, _E, _V, _V, _D)),
        ArgSpec("fork", ()),
        ArgSpec("vfork", ()),
        ArgSpec("clone", (_D, _D, _D, _D, _D)),
        ArgSpec("ptrace", (_D, _D, _D, _D)),
        # --- memory permissions ---
        ArgSpec("mprotect", (_D, _D, _D)),
        ArgSpec("mmap", (_D, _D, _D, _D, _D, _D)),
        ArgSpec("mremap", (_D, _D, _D, _D, _D)),
        ArgSpec("remap_file_pages", (_D, _D, _D, _D, _D)),
        # --- privilege escalation ---
        ArgSpec("chmod", (_E, _D)),
        ArgSpec("setuid", (_D,)),
        ArgSpec("setgid", (_D,)),
        ArgSpec("setreuid", (_D, _D)),
        # --- networking ---
        ArgSpec("socket", (_D, _D, _D)),
        ArgSpec("bind", (_D, _E, _D)),
        ArgSpec("connect", (_D, _E, _D)),
        ArgSpec("listen", (_D, _D)),
        ArgSpec("accept", (_D, _S, _S)),
        ArgSpec("accept4", (_D, _S, _S, _D)),
        # --- event multiplexing (not sensitive; specs recorded so any
        # --- future extension of the sensitive set verifies them right:
        # --- the epoll_event the app passes to epoll_ctl is app memory,
        # --- the array epoll_wait fills is kernel-written output) ---
        ArgSpec("epoll_create1", (_D,)),
        ArgSpec("epoll_ctl", (_D, _D, _D, _E)),
        ArgSpec("epoll_wait", (_D, _S, _D, _D)),
        ArgSpec("epoll_pwait", (_D, _S, _D, _D, _D, _D)),
        # --- §11.2 filesystem extension ---
        ArgSpec("open", (_E, _D, _D)),
        ArgSpec("openat", (_D, _E, _D, _D)),
        ArgSpec("creat", (_E, _D)),
        ArgSpec("read", (_D, _D, _D)),
        ArgSpec("pread64", (_D, _D, _D, _D)),
        ArgSpec("readv", (_D, _D, _D)),
        ArgSpec("write", (_D, _D, _D)),
        ArgSpec("pwrite64", (_D, _D, _D, _D)),
        ArgSpec("writev", (_D, _D, _D)),
        ArgSpec("sendto", (_D, _D, _D, _D, _E, _D)),
        ArgSpec("recvfrom", (_D, _D, _D, _D, _S, _S)),
        ArgSpec("sendfile", (_D, _D, _D, _D)),
        ArgSpec("close", (_D,)),
        ArgSpec("fstat", (_D, _D)),
        ArgSpec("stat", (_E, _D)),
        ArgSpec("lseek", (_D, _D, _D)),
        ArgSpec("unlink", (_E,)),
        ArgSpec("rename", (_E, _E)),
    )
}

_missing = [n for n in SENSITIVE_SYSCALLS + FILESYSTEM_EXTENSION if n not in ARG_SPECS]
if _missing:
    raise AssertionError("missing ArgSpec for: %s" % ", ".join(_missing))


def argspec_for(name):
    """Return the :class:`ArgSpec` for ``name`` (all-DIRECT if unlisted)."""
    spec = ARG_SPECS.get(name)
    if spec is None:
        spec = ArgSpec(name, ())
    return spec
