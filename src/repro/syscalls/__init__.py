"""System call numbering, classification, and argument specifications.

This subpackage is the single source of truth for:

- :mod:`repro.syscalls.table` — the (subset of the) x86-64 Linux syscall
  table used by the simulated kernel and the apps;
- :mod:`repro.syscalls.sensitive` — the paper's Table 1: the 20 sensitive
  system calls grouped by the attack vector that commonly abuses them, plus
  the filesystem extension set of §11.2 / Table 7;
- :mod:`repro.syscalls.argspec` — per-syscall argument typing (direct vs
  extended, §3.3/§6.3.2) used by the monitor's argument-integrity check.
"""

from repro.syscalls.table import (
    SYSCALLS,
    SYSCALL_BY_NAME,
    SYSCALL_BY_NR,
    nr_of,
    name_of,
    SyscallDef,
)
from repro.syscalls.sensitive import (
    SENSITIVE_SYSCALLS,
    SENSITIVE_BY_CATEGORY,
    FILESYSTEM_EXTENSION,
    AttackVector,
    is_sensitive,
    sensitive_numbers,
)
from repro.syscalls.argspec import ArgKind, ArgSpec, argspec_for, ARG_SPECS

__all__ = [
    "SYSCALLS",
    "SYSCALL_BY_NAME",
    "SYSCALL_BY_NR",
    "nr_of",
    "name_of",
    "SyscallDef",
    "SENSITIVE_SYSCALLS",
    "SENSITIVE_BY_CATEGORY",
    "FILESYSTEM_EXTENSION",
    "AttackVector",
    "is_sensitive",
    "sensitive_numbers",
    "ArgKind",
    "ArgSpec",
    "argspec_for",
    "ARG_SPECS",
]
