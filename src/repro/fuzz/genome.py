"""Attack genomes: structured, mutable specs over `repro.attacks.primitives`.

A :class:`Genome` is everything the fuzzer may vary about an attack:

- ``target``       which application binary (the attack-target registry);
- ``trigger``      which hook point stands in for the memory-corruption
                   vulnerability (CVE-2013-2028 and friends);
- ``target_class`` *what* gets corrupted — the ISSUE 9 closed set
                   {return address, frame pointer, syscall-number slot,
                   argument register, bound shadow variable,
                   function-pointer slot};
- ``primitive``    *how* — a precise overwrite, a counterfeit-object
                   spray (NEWTON CPI / COOP style), or a single bit flip;
- ``timing``       which firing of the trigger the corruption lands on;
- ``chain``        the syscall mix: payload ops (execve/setuid/mprotect/
                   ...) the attacker tries to reach, each with its own
                   kernel-evidence success oracle.

Genomes compile to ordinary :class:`repro.attacks.catalog.AttackSpec`s
(:func:`spec_for_genome`), so the fuzzer runs through the exact Table 6
harness, and divergences can be replayed as catalog rows forever.

Everything here is deterministic: staging failures (a symbol the
debloated image dropped, a write into an unmapped page) are caught and
recorded as notes, never raised — a genome whose corruption cannot even
be staged simply fizzles, which is itself signal (that is *how* debloat
blocks attacks).
"""

from dataclasses import dataclass

from repro.attacks.catalog import AttackSpec
from repro.attacks.primitives import AttackError
from repro.attacks.rop import build_ret2libc_chain, launch_ret2libc
from repro.errors import VMFault
from repro.vm.memory import WORD

TARGET_CLASSES = (
    "return_address",
    "frame_pointer",
    "syscall_number_slot",
    "argument_register",
    "bound_shadow_variable",
    "function_pointer_slot",
)

PRIMITIVES = ("overwrite", "spray", "bitflip")

MAX_TIMING = 3
MAX_CHAIN = 3

#: hook points per target (the vulnerability stand-ins)
TRIGGERS = {
    "nginx": (
        "ngx_request",
        "ngx_output_chain_icall",
        "ngx_indexed_variable_entry",
        "ngx_master_cycle",
    ),
    "httpd": ("ap_run_handler",),
    "browser": ("browser_event",),
    "mediasrv": ("ms_parse_frame",),
}

#: corruption classes with a generic applier, valid at every trigger
GENERIC_CLASSES = ("return_address", "frame_pointer")

#: site-specific corruption classes per (target, trigger)
SITE_CLASSES = {
    ("nginx", "ngx_request"): ("argument_register",),
    ("nginx", "ngx_output_chain_icall"): (
        "function_pointer_slot",
        "syscall_number_slot",
    ),
    ("nginx", "ngx_indexed_variable_entry"): (
        "function_pointer_slot",
        "argument_register",
    ),
    ("nginx", "ngx_master_cycle"): ("bound_shadow_variable",),
    ("httpd", "ap_run_handler"): (
        "function_pointer_slot",
        "syscall_number_slot",
        "argument_register",
    ),
    ("browser", "browser_event"): ("function_pointer_slot",),
    ("mediasrv", "ms_parse_frame"): (
        "function_pointer_slot",
        "syscall_number_slot",
        "bound_shadow_variable",
    ),
}

#: (target, trigger, class) triples where a counterfeit-object spray is a
#: genuinely different corruption than a precise overwrite
SPRAY_SITES = {
    ("nginx", "ngx_indexed_variable_entry", "function_pointer_slot"),
    ("nginx", "ngx_indexed_variable_entry", "argument_register"),
    ("httpd", "ap_run_handler", "function_pointer_slot"),
    ("browser", "browser_event", "function_pointer_slot"),
}


def classes_for(target, trigger):
    return GENERIC_CLASSES + SITE_CLASSES.get((target, trigger), ())


# ---------------------------------------------------------------------------
# Payload ops: the syscall mix
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PayloadOp:
    """One attacker goal: a libc wrapper to reach, its arguments, and the
    kernel-evidence oracle that says the goal was reached."""

    name: str
    func: str
    targets: tuple
    build_args: object  # (env) -> 3-tuple
    check: object  # (env) -> bool
    needs_fs_extension: bool = False


def _pool_addr(env):
    """A live RW mapping: nginx's first pool, mediasrv's frame pool."""
    for name in ("g_pools", "g_frame_pool"):
        try:
            return env.read(env.global_addr(name))
        except AttackError:
            continue
    raise AttackError("no known pool global in target")


PAYLOAD_OPS = {}


def _op(**kwargs):
    op = PayloadOp(**kwargs)
    PAYLOAD_OPS[op.name] = op
    return op


_ALL = ("nginx", "httpd", "browser", "mediasrv")

_op(
    name="exec_shell",
    func="execve",
    targets=_ALL,
    build_args=lambda env: (env.plant_string("/bin/sh"), 0, 0),
    check=lambda env: env.executed("/bin/sh"),
)
_op(
    name="setuid_root",
    func="setuid",
    targets=_ALL,
    build_args=lambda env: (0, 0, 0),
    check=lambda env: env.setuid_attempted(0),
)
_op(
    name="chmod_passwd",
    func="chmod",
    targets=_ALL,
    build_args=lambda env: (env.plant_string("/etc/passwd"), 0o777, 0),
    check=lambda env: env.chmod_attempted("/etc/passwd"),
)
_op(
    name="mprotect_pool",
    func="mprotect",
    targets=("nginx", "mediasrv"),
    build_args=lambda env: (_pool_addr(env), 4096, 7),
    check=lambda env: env.made_memory_executable(),
)
_op(
    name="connect_c2",
    func="connect",
    targets=_ALL,
    build_args=lambda env: (3, env.plant_words([2, 4444, 0x7F000001]), 16),
    check=lambda env: env.connected_to(4444),
)
_op(
    name="mremap_pool",
    func="mremap",
    targets=("nginx", "mediasrv"),
    build_args=lambda env: (_pool_addr(env), 4096, 1 << 20),
    check=lambda env: env.mremap_attempted(),
)
_op(
    name="open_shadow",
    func="open",
    targets=("nginx",),
    build_args=lambda env: (env.plant_string("/etc/shadow"), 0, 0),
    check=lambda env: env.opened("/etc/shadow"),
    needs_fs_extension=True,
)


def ops_for(target):
    """Payload op names valid for ``target`` (sorted, deterministic)."""
    return tuple(
        name for name in sorted(PAYLOAD_OPS) if target in PAYLOAD_OPS[name].targets
    )


# ---------------------------------------------------------------------------
# The genome
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Genome:
    target: str
    trigger: str
    target_class: str
    primitive: str
    timing: int
    chain: tuple  # payload op names, head op drives single-shot sites

    def key(self):
        return (
            self.target,
            self.trigger,
            self.target_class,
            self.primitive,
            self.timing,
            self.chain,
        )

    def to_dict(self):
        return {
            "target": self.target,
            "trigger": self.trigger,
            "target_class": self.target_class,
            "primitive": self.primitive,
            "timing": self.timing,
            "chain": list(self.chain),
        }


def genome_from_dict(data):
    return repair(
        Genome(
            target=data["target"],
            trigger=data["trigger"],
            target_class=data["target_class"],
            primitive=data["primitive"],
            timing=int(data["timing"]),
            chain=tuple(data["chain"]),
        )
    )


def repair(genome):
    """Clamp a (possibly mutated) genome back onto the valid domain.

    Deterministic: invalid field values snap to the first valid choice,
    never to a random one, so mutation + repair is a pure function.
    """
    target = genome.target if genome.target in TRIGGERS else "nginx"
    triggers = TRIGGERS[target]
    trigger = genome.trigger if genome.trigger in triggers else triggers[0]
    classes = classes_for(target, trigger)
    target_class = (
        genome.target_class if genome.target_class in classes else classes[0]
    )
    primitive = genome.primitive if genome.primitive in PRIMITIVES else "overwrite"
    if primitive == "spray" and (target, trigger, target_class) not in SPRAY_SITES:
        primitive = "overwrite"
    timing = min(max(int(genome.timing), 1), MAX_TIMING)
    valid_ops = ops_for(target)
    chain = tuple(op for op in genome.chain if op in valid_ops)[:MAX_CHAIN]
    if not chain:
        chain = ("exec_shell",)
    return Genome(
        target=target,
        trigger=trigger,
        target_class=target_class,
        primitive=primitive,
        timing=timing,
        chain=chain,
    )


def seed_genomes():
    """The deterministic starting corpus: one canonical genome per
    site-specific corruption class plus the generic ROP/pivot entries."""
    seeds = []
    for target in sorted(TRIGGERS):
        for trigger in TRIGGERS[target]:
            for cls in classes_for(target, trigger):
                seeds.append(
                    repair(
                        Genome(
                            target=target,
                            trigger=trigger,
                            target_class=cls,
                            primitive="overwrite",
                            timing=1,
                            chain=("exec_shell",),
                        )
                    )
                )
    return seeds


# ---------------------------------------------------------------------------
# Mutators: point / havoc / splice
# ---------------------------------------------------------------------------

_FIELDS = ("target", "trigger", "target_class", "primitive", "timing", "chain")


def _mutate_field(genome, fieldname, rng):
    values = genome.to_dict()
    if fieldname == "target":
        values["target"] = rng.choice(sorted(TRIGGERS))
    elif fieldname == "trigger":
        values["trigger"] = rng.choice(TRIGGERS[genome.target])
    elif fieldname == "target_class":
        values["target_class"] = rng.choice(
            classes_for(genome.target, genome.trigger)
        )
    elif fieldname == "primitive":
        values["primitive"] = rng.choice(PRIMITIVES)
    elif fieldname == "timing":
        values["timing"] = 1 + rng.randint(MAX_TIMING)
    else:
        ops = ops_for(genome.target)
        chain = list(genome.chain)
        roll = rng.randint(3)
        if roll == 0 and len(chain) < MAX_CHAIN:
            chain.insert(rng.randint(len(chain) + 1), rng.choice(ops))
        elif roll == 1 and len(chain) > 1:
            chain.pop(rng.randint(len(chain)))
        else:
            chain[rng.randint(len(chain))] = rng.choice(ops)
        values["chain"] = chain
    return genome_from_dict(values)


def point_mutate(genome, rng):
    """Reroll exactly one field."""
    return _mutate_field(genome, rng.choice(_FIELDS), rng)


def havoc_mutate(genome, rng):
    """A burst of 2-4 point mutations."""
    for _ in range(2 + rng.randint(3)):
        genome = _mutate_field(genome, rng.choice(_FIELDS), rng)
    return genome


def splice_mutate(first, second, rng):
    """Crossover: the corruption site from one parent, the delivery
    (primitive/timing/chain) from the other."""
    return repair(
        Genome(
            target=first.target,
            trigger=first.trigger,
            target_class=first.target_class,
            primitive=second.primitive,
            timing=second.timing,
            chain=second.chain,
        )
    )


def mutate(genome, rng, mate=None):
    roll = rng.randint(4)
    if roll == 0 and mate is not None:
        return splice_mutate(genome, mate, rng)
    if roll == 1:
        return havoc_mutate(genome, rng)
    return point_mutate(genome, rng)


# ---------------------------------------------------------------------------
# Corruption appliers: genome -> concrete memory writes at the trigger
# ---------------------------------------------------------------------------


def _chain_calls(env, genome):
    calls = []
    for name in genome.chain:
        op = PAYLOAD_OPS[name]
        calls.append((op.func, op.build_args(env)))
    return calls


def _head(env, genome):
    """The head op resolved: (wrapper entry, 3 args)."""
    op = PAYLOAD_OPS[genome.chain[0]]
    return env.func_addr(op.func), op.build_args(env)


def _apply_return_address(env, genome):
    if genome.primitive == "bitflip":
        slot = env.cpu.fp + WORD
        env.write(slot, env.read(slot) ^ (1 << 4))
    else:
        launch_ret2libc(env, _chain_calls(env, genome))


def _apply_frame_pointer(env, genome):
    if genome.primitive == "bitflip":
        env.write(env.cpu.fp, env.read(env.cpu.fp) ^ (1 << 4))
    else:
        # Corrupt only the saved-FP slot: the victim returns normally, but
        # its *caller* now runs on a counterfeit frame whose return slot
        # launches the chain one epilogue later.
        target, frame = build_ret2libc_chain(env, _chain_calls(env, genome))
        pivot = env.fake_frame([], saved_fp=frame, return_addr=target)
        env.write(env.cpu.fp, pivot)


def _apply_ngx_output_chain(env, genome):
    func, args = _head(env, genome)
    env.write(env.current_local_addr("flt"), func)
    if genome.target_class == "syscall_number_slot":
        # swap only *which* wrapper the already-loaded pointer dispatches;
        # fctx/in_ keep the program's own argument values (pure call-type
        # violation, no argument grooming)
        return
    if genome.primitive == "bitflip":
        env.write(env.current_local_addr("flt"), func ^ (1 << 2))
        return
    env.write(env.current_local_addr("fctx"), args[0])
    env.write(env.current_local_addr("in_"), args[1])
    wrapper_fp = env.cpu.sp - 2 * WORD
    env.write(wrapper_fp - 3 * WORD, args[2])


def _apply_ngx_indexed(env, genome):
    vars_base = env.global_addr("g_http_vars")
    if genome.target_class == "function_pointer_slot":
        func, args = _head(env, genome)
        if genome.primitive == "bitflip":
            env.write(vars_base, env.read(vars_base) ^ (1 << 2))
            env.write(env.current_local_addr("index"), 0)
            return
        if genome.primitive == "spray":
            # NEWTON CPI style: counterfeit entry on an exact stride
            stride = 3 * WORD
            k = (env._scratch_next - vars_base) // stride + 1
            entry = vars_base + k * stride
            env.write(entry, func)
            env.write(entry + WORD, args[2])  # v[k].data -> third arg
            env.write(entry + 2 * WORD, 0)
            env._scratch_next = entry + 4 * WORD
            env.write(env.current_local_addr("index"), k)
        else:
            env.write(vars_base, func)
            env.write(vars_base + WORD, args[2])
            env.write(env.current_local_addr("index"), 0)
        env.write(env.current_local_addr("r"), args[0])
    else:  # argument_register: never touch a code pointer
        if genome.primitive == "bitflip":
            addr = env.current_local_addr("index")
            env.write(addr, env.read(addr) ^ 1)
            return
        _func, args = _head(env, genome)
        env.write(env.current_local_addr("r"), args[0])
        if genome.primitive == "spray":
            # out-of-bounds index into sprayed-but-legit-typed entries
            env.write(env.current_local_addr("index"), 1)


def _apply_ngx_master(env, genome):
    flag = env.global_addr("g_upgrade_flag")
    if genome.primitive == "bitflip":
        env.write(flag, env.read(flag) ^ 1)
        return
    # AOCR Attack 2 generalized: flip the flag, swap the bound exec-context
    # path for the head op's path-like first argument
    _func, args = _head(env, genome)
    env.write(flag, 1)
    path_slot = env.global_addr("g_exec_ctx") + env.struct_offset(
        "ngx_exec_ctx_t", "path"
    )
    env.write(path_slot, args[0])


def _apply_ngx_request_args(env, genome):
    if genome.primitive == "bitflip":
        addr = env.current_local_addr("n")
        env.write(addr, env.read(addr) ^ (1 << 12))
        return
    _func, args = _head(env, genome)
    env.write(env.current_local_addr("n"), args[2] or (1 << 12))


def _apply_ap_run_handler(env, genome):
    table = env.global_addr("g_handlers")
    func, args = _head(env, genome)
    if genome.target_class == "syscall_number_slot":
        env.write(table, func)  # args stay the program's own
        return
    if genome.target_class == "argument_register":
        if genome.primitive == "bitflip":
            addr = env.current_local_addr("n")
            env.write(addr, env.read(addr) ^ (1 << 2))
            return
        env.write(env.current_local_addr("r"), args[0])
        env.write(env.current_local_addr("n"), args[2])
        return
    if genome.primitive == "bitflip":
        env.write(table, env.read(table) ^ (1 << 2))
        return
    if genome.primitive == "spray":
        slot = table + WORD
        env.write(slot, func)
        env.write(env.current_local_addr("idx"), 1)
    else:
        env.write(table, func)
    env.write(env.current_local_addr("r"), args[0])
    env.write(env.current_local_addr("n"), args[2])


def _apply_browser_event(env, genome):
    if genome.primitive == "bitflip":
        doc = env.global_addr("g_document")
        env.write(doc, env.read(doc) ^ (1 << 2))
        return
    head = PAYLOAD_OPS[genome.chain[0]]
    if head.func == "execve":
        # COOP: counterfeit object, vptr into a legit vtable off by one
        # slot, so the benign render dispatch becomes renderer_spawn(path)
        sh = env.plant_string("/bin/sh")
        vt = env.global_addr("g_vt_document")
        counterfeit = env.plant_words([vt + WORD, sh, 0])
    else:
        # counterfeit vtable pointing straight at the wrapper: the virtual
        # dispatch passes the object itself as the only argument
        func, _args = _head(env, genome)
        fake_vt = env.plant_words([func, func])
        counterfeit = env.plant_words([fake_vt, 0, 0])
    env.write(env.current_local_addr("obj"), counterfeit)


def _apply_ms_parse_frame(env, genome):
    buf = env.global_addr("g_parse_buf")
    handler = env.global_addr("g_handler")
    if buf + 64 * WORD != handler:
        raise AttackError("layout changed: overflow no longer adjacent")
    off = lambda fieldname: env.struct_offset("frame_handler_t", fieldname)  # noqa: E731
    func, args = _head(env, genome)
    if genome.target_class == "bound_shadow_variable":
        # corrupt only the AI-bound argument fields; the legitimate
        # on_frame callback runs with attacker values
        if genome.primitive == "bitflip":
            slot = handler + off("arg1")
            env.write(slot, env.read(slot) ^ (1 << 8))
            return
        env.write(handler + off("arg0"), args[0])
        env.write(handler + off("arg1"), args[1])
        env.write(handler + off("arg2"), args[2])
        return
    if genome.primitive == "bitflip":
        slot = handler + off("on_frame")
        env.write(slot, env.read(slot) ^ (1 << 2))
        return
    env.write(handler + off("on_frame"), func)
    if genome.target_class == "syscall_number_slot":
        return  # wrapper swapped, bound args left legitimate
    env.write(handler + off("arg0"), args[0])
    env.write(handler + off("arg1"), args[1])
    env.write(handler + off("arg2"), args[2])


_SITE_APPLIERS = {
    ("nginx", "ngx_output_chain_icall"): _apply_ngx_output_chain,
    ("nginx", "ngx_indexed_variable_entry"): _apply_ngx_indexed,
    ("nginx", "ngx_master_cycle"): _apply_ngx_master,
    ("nginx", "ngx_request"): _apply_ngx_request_args,
    ("httpd", "ap_run_handler"): _apply_ap_run_handler,
    ("browser", "browser_event"): _apply_browser_event,
    ("mediasrv", "ms_parse_frame"): _apply_ms_parse_frame,
}


def apply_corruption(env, genome):
    if genome.target_class == "return_address":
        _apply_return_address(env, genome)
    elif genome.target_class == "frame_pointer":
        _apply_frame_pointer(env, genome)
    else:
        _SITE_APPLIERS[(genome.target, genome.trigger)](env, genome)


# ---------------------------------------------------------------------------
# Genome -> AttackSpec
# ---------------------------------------------------------------------------


def genome_name(genome):
    return "fz_%s_%s_%s_t%d_%s" % (
        genome.target,
        genome.target_class,
        genome.primitive,
        genome.timing,
        "-".join(genome.chain),
    )


def _make_stage(genome):
    def stage(env):
        state = {"count": 0}

        def trampoline(cpu):
            state["count"] += 1
            if state["count"] != genome.timing:
                return
            try:
                apply_corruption(env, genome)
            except (AttackError, VMFault) as exc:
                # staging itself failed (symbol debloated away, scratch
                # page unmapped, ...) — the genome fizzles, on record
                env.notes.append("staging failed: %s" % exc)

        env.cpu.hooks[genome.trigger] = trampoline

    return stage


def _make_oracle(genome):
    ops = [PAYLOAD_OPS[name] for name in genome.chain]

    def oracle(env):
        return any(op.check(env) for op in ops)

    return oracle


def spec_for_genome(genome, name=None):
    """Compile a genome into a catalog-compatible :class:`AttackSpec`."""
    genome = repair(genome)
    return AttackSpec(
        name=name or genome_name(genome),
        category="Fuzz-discovered divergence",
        target=genome.target,
        description=(
            "fuzz genome: %s via %s at %s (timing %d), chain %s"
            % (
                genome.target_class,
                genome.primitive,
                genome.trigger,
                genome.timing,
                "+".join(genome.chain),
            )
        ),
        expected={},
        stage=_make_stage(genome),
        oracle=_make_oracle(genome),
        needs_fs_extension=any(
            PAYLOAD_OPS[op].needs_fs_extension for op in genome.chain
        ),
        extra=True,
        refs="repro.fuzz",
    )
