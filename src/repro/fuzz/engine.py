"""The coverage-guided differential fuzz loop.

Keep a genome iff it adds coverage (its token signature contains something
no kept genome produced) **or** any two mechanisms disagree on kill/allow.
Divergences are minimized by greedy mutation-reversal and written to a
byte-stable corpus JSON that CI replays forever (same seed + same budget
=> byte-identical file; there is no wall-clock or unseeded randomness
anywhere in ``repro.fuzz``).
"""

import json
import os

from repro.fuzz.genome import (
    Genome,
    genome_from_dict,
    mutate,
    repair,
    seed_genomes,
)
from repro.fuzz.oracle import MATRIX, evaluate_genome
from repro.fuzz.rng import FuzzRNG

SCHEMA = "repro-fuzz-corpus/v1"
DEFAULT_SEED = 11
DEFAULT_BUDGET = 200


def default_corpus_path():
    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    return os.path.join(root, "tests", "fixtures", "fuzz_corpus.json")


# ---------------------------------------------------------------------------
# Minimization: greedy mutation-reversal
# ---------------------------------------------------------------------------


def _reversal_candidates(genome):
    """Simpler variants in a fixed greedy order: shortest chain first,
    then earliest trigger timing, then the plainest primitive."""
    candidates = []
    if len(genome.chain) > 1:
        candidates.append(
            Genome(
                target=genome.target,
                trigger=genome.trigger,
                target_class=genome.target_class,
                primitive=genome.primitive,
                timing=genome.timing,
                chain=genome.chain[:1],
            )
        )
    if genome.timing != 1:
        candidates.append(
            Genome(
                target=genome.target,
                trigger=genome.trigger,
                target_class=genome.target_class,
                primitive=genome.primitive,
                timing=1,
                chain=genome.chain,
            )
        )
    if genome.primitive != "overwrite":
        candidates.append(
            Genome(
                target=genome.target,
                trigger=genome.trigger,
                target_class=genome.target_class,
                primitive="overwrite",
                timing=genome.timing,
                chain=genome.chain,
            )
        )
    return [repair(c) for c in candidates]


def minimize_divergence(result):
    """Greedily revert mutations while the exact disagreement pattern
    persists; returns the minimized :class:`MatrixResult`."""
    current = result
    progress = True
    evaluations = 0
    while progress and evaluations < 8:
        progress = False
        for candidate in _reversal_candidates(current.genome):
            if candidate.key() == current.genome.key():
                continue
            trial = evaluate_genome(candidate)
            evaluations += 1
            if trial.pattern == current.pattern and trial.valid:
                current = trial
                progress = True
                break
    return current


# ---------------------------------------------------------------------------
# The fuzz campaign
# ---------------------------------------------------------------------------


class FuzzCampaign:
    """One seeded run: corpus state + the divergence log."""

    def __init__(self, seed=DEFAULT_SEED, budget=DEFAULT_BUDGET, progress=None):
        self.seed = seed
        self.budget = budget
        self.progress = progress or (lambda msg: None)
        self.rng = FuzzRNG(seed)
        self.coverage = set()
        self.kept = []  # genomes that added coverage
        self.divergences = []  # minimized MatrixResults, discovery order
        self._divergence_keys = set()
        self._seen = set()
        self.executed = 0

    def _next_genome(self, queue):
        if queue:
            return queue.pop(0)
        base_pool = self.kept if self.kept else seed_genomes()
        base = self.rng.choice(base_pool)
        mate = self.rng.choice(base_pool)
        return mutate(base, self.rng, mate=mate)

    def _consider(self, result):
        fresh = result.tokens - self.coverage
        if fresh:
            self.coverage |= result.tokens
            self.kept.append(result.genome)
        if result.divergent:
            key = result.divergence_key()
            if key not in self._divergence_keys:
                self._divergence_keys.add(key)
                minimized = minimize_divergence(result)
                self.divergences.append(minimized)
                self.progress(
                    "divergence %d: %s (%s)"
                    % (
                        len(self.divergences),
                        minimized.genome.target_class,
                        ", ".join(
                            "%s>%s" % pair
                            for pair in minimized.divergent_pairs()[:3]
                        ),
                    )
                )

    def run(self):
        queue = list(seed_genomes())
        attempts = 0
        while self.executed < self.budget and attempts < self.budget * 20:
            attempts += 1
            genome = repair(self._next_genome(queue))
            if genome.key() in self._seen:
                continue
            self._seen.add(genome.key())
            result = evaluate_genome(genome)
            self.executed += 1
            if self.executed % 25 == 0:
                self.progress(
                    "%d/%d genomes, %d coverage tokens, %d divergences"
                    % (
                        self.executed,
                        self.budget,
                        len(self.coverage),
                        len(self.divergences),
                    )
                )
            self._consider(result)
        return self

    # -- corpus serialization ------------------------------------------------

    def to_payload(self):
        divergences = []
        for i, result in enumerate(self.divergences):
            divergences.append(
                {
                    "name": "fz_%03d_%s_%s"
                    % (i + 1, result.genome.target, result.genome.target_class),
                    "genome": result.genome.to_dict(),
                    "pattern": result.pattern,
                    "blocked_by": result.blocked_by,
                    "pairs": [list(p) for p in result.divergent_pairs()],
                }
            )
        return {
            "schema": SCHEMA,
            "seed": self.seed,
            "budget": self.budget,
            "executed": self.executed,
            "matrix": list(MATRIX),
            "coverage_tokens": len(self.coverage),
            "kept": [g.to_dict() for g in self.kept],
            "divergences": divergences,
        }


def serialize_corpus(payload):
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def load_corpus(path=None):
    path = path or default_corpus_path()
    with open(path) as handle:
        payload = json.load(handle)
    if payload.get("schema") != SCHEMA:
        raise ValueError("unknown corpus schema: %r" % payload.get("schema"))
    return payload


def run_campaign(seed=DEFAULT_SEED, budget=DEFAULT_BUDGET, progress=None):
    return FuzzCampaign(seed=seed, budget=budget, progress=progress).run()


# ---------------------------------------------------------------------------
# Replay: pinned divergences must reproduce forever
# ---------------------------------------------------------------------------


def replay_entry(entry):
    """Re-run one corpus divergence; returns (ok, MatrixResult)."""
    result = evaluate_genome(genome_from_dict(entry["genome"]))
    ok = (
        result.valid
        and result.pattern == entry["pattern"]
        and result.blocked_by == entry["blocked_by"]
    )
    return ok, result


def replay_corpus(payload, names=None):
    """Replay every (or the named) pinned divergence; returns a list of
    (entry, ok, MatrixResult)."""
    rows = []
    for entry in payload["divergences"]:
        if names and entry["name"] not in names:
            continue
        ok, result = replay_entry(entry)
        rows.append((entry, ok, result))
    return rows
