"""Dispatch-time fault injection (SFP-style, Schilling et al.).

A :class:`FaultInjector` is a dispatch-pipeline hook — installed through
the existing ``insert()`` API of :mod:`repro.kernel.dispatch` — that flips
a single chosen bit in one of three fault sites on the Nth dispatch of a
chosen syscall:

- ``syscall_number``  the number the rest of the pipeline dispatches on
  (``write`` with bit 3 becomes ``mmap``: an allowed, boring syscall turns
  into a sensitive one mid-flight);
- ``arg_register``    one argument register;
- ``filter_state``    the ``k`` constant of the first JEQ in the process's
  first attached seccomp-BPF filter (persistent state corruption).

The ``stage`` picks where in the pipeline the flip lands, which decides
who still sees the corrupt value:

- ``pre_seccomp``   (hook at ``count``)   seccomp, the monitor, and the
  syscall handler all see the flipped value;
- ``post_seccomp``  (hook at ``seccomp``) the filter checked the original,
  the monitor and handler see the flip;
- ``pre_execute``   (hook at ``verify``)  every check passed on the
  original; only the handler executes the flip.

Fault campaigns run benign workloads through the same differential matrix
as the fuzzer and classify each (mechanism, fault) cell:

- ``caught``       a mechanism killed the process (fail-stop);
- ``crashed``      the VM faulted — the fault itself took the process down;
- ``missed``       the run completed but observably differs from the clean
  reference (the corruption propagated, nothing noticed);
- ``masked``       the run completed bit-identical to the reference;
- ``not-reached``  the injector never fired (e.g. a filter-state fault
  under a mechanism that installs no filter).

Notable honest physics: BASTION's argument-integrity context compares
*memory-resident* variables against shadow copies, so a register-only flip
after the wrapper loaded its variables is invisible to it — exactly the
gap SFP's hardware protection argues filters and monitors leave open.
"""

import dataclasses

from repro.attacks.catalog import AttackSpec
from repro.fuzz.oracle import MATRIX, _run_mechanism
from repro.kernel.bpf import BPF_JEQ, BPF_JMP, BPF_K, BPFProgram
from repro.kernel.errno import ENOSYS
from repro.kernel.seccomp import SeccompFilter
from repro.syscalls.table import SYSCALL_BY_NR, nr_of

FAULT_SITES = ("syscall_number", "arg_register", "filter_state")

#: fault stage -> pipeline insert() point (the hook runs after that
#: stage's installed handlers)
FAULT_STAGES = {
    "pre_seccomp": "count",
    "post_seccomp": "seccomp",
    "pre_execute": "verify",
}


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One single-bit dispatch-time fault."""

    site: str  # FAULT_SITES
    stage: str  # FAULT_STAGES key
    syscall: str = "write"  # fault the Nth dispatch of this syscall
    occurrence: int = 3
    bit: int = 3
    arg_index: int = 2

    def label(self):
        return "%s@%s" % (self.site, self.stage)


class FaultInjector:
    """The pipeline hook that performs one fault, once."""

    def __init__(self, spec):
        self.spec = spec
        self.fired = False
        self.detail = None
        self._count = 0
        self._kernel = None
        self._proc = None

    def install(self, kernel, proc):
        self._kernel = kernel
        self._proc = proc
        kernel.pipeline.insert(FAULT_STAGES[self.spec.stage], self._hook)
        return self

    def _hook(self, ctx):
        if self.fired or ctx.done or ctx.proc is not self._proc:
            return
        if ctx.name != self.spec.syscall:
            return
        self._count += 1
        if self._count != self.spec.occurrence:
            return
        site = self.spec.site
        if site == "syscall_number":
            self._flip_number(ctx)
        elif site == "arg_register":
            self._flip_arg(ctx)
        else:
            self._flip_filter(ctx)
        if self.fired:
            self._kernel.telemetry.count("fault.injected")

    def _flip_number(self, ctx):
        nr = nr_of(ctx.name)
        flipped = nr ^ (1 << self.spec.bit)
        entry = SYSCALL_BY_NR.get(flipped)
        self.fired = True
        if entry is None:
            self.detail = "%s(%d) -> sys_%d (ENOSYS)" % (ctx.name, nr, flipped)
            ctx.short_circuit(-ENOSYS, "errno")
        else:
            self.detail = "%s(%d) -> %s(%d)" % (ctx.name, nr, entry.name, flipped)
            ctx.name = entry.name

    def _flip_arg(self, ctx):
        args = list(ctx.args)
        index = self.spec.arg_index
        if index >= len(args):
            self.detail = "arg%d absent" % index
            return
        old = args[index]
        args[index] = old ^ (1 << self.spec.bit)
        ctx.args = tuple(args)
        self.fired = True
        self.detail = "arg%d %#x -> %#x" % (index, old, args[index])

    def _flip_filter(self, ctx):
        filters = ctx.proc.seccomp_filters
        if not filters:
            self.detail = "no filter installed"
            return
        filt = filters[0]
        insns = list(filt.program.instructions)
        jeq = BPF_JMP | BPF_JEQ | BPF_K
        for i, ins in enumerate(insns):
            if ins.code == jeq:
                new_k = (ins.k ^ (1 << self.spec.bit)) & 0xFFFFFFFF
                insns[i] = dataclasses.replace(ins, k=new_k)
                # copy-on-fault: the original program object may be shared
                # with a cached artifact — never mutate it in place
                filters[0] = SeccompFilter(
                    program=BPFProgram(insns), label=filt.label + "+fault"
                )
                self.fired = True
                self.detail = "JEQ@%d k %#x -> %#x" % (i, ins.k, new_k)
                return
        self.detail = "no JEQ in filter"


# ---------------------------------------------------------------------------
# The fault campaign: benign runs x mechanisms x fault specs
# ---------------------------------------------------------------------------

#: the pinned campaign matrix: every fault site at every pipeline stage
CAMPAIGN_SPECS = tuple(
    FaultSpec(site=site, stage=stage)
    for site in FAULT_SITES
    for stage in FAULT_STAGES
)

CLASSIFICATIONS = ("caught", "crashed", "missed", "masked", "not-reached")


def _benign_spec(name, sink):
    """A no-op 'attack' spec: nothing staged, oracle always false — the
    target just runs its benign workload.  ``sink`` receives the AttackEnv
    so the campaign can profile the run and install injectors."""

    def stage(env):
        sink.append(env)

    return AttackSpec(
        name=name,
        category="Fault injection",
        target="nginx",
        description="benign nginx+wrk run for the fault campaign",
        expected={},
        stage=stage,
        oracle=lambda env: False,
        extra=True,
        refs="repro.fuzz.faults",
    )


def _fault_spec(fault, sink):
    def stage(env):
        env.extra_injector = FaultInjector(fault).install(env.kernel, env.proc)
        sink.append(env)

    return AttackSpec(
        name="fault_%s_%s" % (fault.site, fault.stage),
        category="Fault injection",
        target="nginx",
        description="benign nginx+wrk run with %s" % fault.label(),
        expected={},
        stage=stage,
        oracle=lambda env: False,
        extra=True,
        refs="repro.fuzz.faults",
    )


def _profile(env, outcome):
    """Everything observable about a completed run, for masked-vs-missed."""
    kernel = env.kernel
    counts = {}
    for proc in kernel.processes.values():
        for name, value in proc.syscall_counts.items():
            counts[name] = counts.get(name, 0) + value
    return (
        outcome.status.kind,
        env.proc.kill_reason,
        tuple(sorted(counts.items())),
        kernel.net.bytes_sent,
        tuple(e.details.get("path") for e in kernel.events_of("execve")),
        env.proc.mm is not None and env.proc.mm.has_wx_region(),
    )


def _classify(injector, outcome, profile, reference):
    if not injector.fired:
        return "not-reached"
    if outcome.blocked:
        return "caught"
    if outcome.status.kind == "fault":
        return "crashed"
    if profile != reference:
        return "missed"
    return "masked"


def run_fault_campaign(mechanisms=None, specs=None):
    """The mechanism x fault-site detection matrix.

    Returns ``{"matrix": [...], "cells": {fault_label: {mechanism:
    {"class": ..., "detail": ..., "blocked_by": ...}}}}`` — deterministic,
    derived entirely from pinned benign runs.
    """
    mechanisms = tuple(mechanisms or ("undefended",) + MATRIX)
    specs = tuple(specs or CAMPAIGN_SPECS)

    references = {}
    for mechanism in mechanisms:
        sink = []
        outcome = _run_mechanism(_benign_spec("fault_reference", sink), mechanism)
        references[mechanism] = _profile(sink[0], outcome)

    cells = {}
    for fault in specs:
        row = {}
        for mechanism in mechanisms:
            sink = []
            outcome = _run_mechanism(_fault_spec(fault, sink), mechanism)
            env = sink[0]
            injector = env.extra_injector
            profile = _profile(env, outcome)
            row[mechanism] = {
                "class": _classify(
                    injector, outcome, profile, references[mechanism]
                ),
                "detail": injector.detail,
                "blocked_by": (
                    str(outcome.blocked_by)
                    if outcome.blocked_by is not None
                    else None
                ),
            }
        cells[fault.label()] = row
    return {
        "matrix": list(mechanisms),
        "sites": list(FAULT_SITES),
        "stages": list(FAULT_STAGES),
        "cells": cells,
    }
