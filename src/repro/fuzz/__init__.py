"""repro.fuzz — coverage-guided differential attack fuzzing + fault injection.

Three pieces (ISSUE 9):

- :mod:`repro.fuzz.genome`  a mutation engine over the attack-primitive
  vocabulary (splice/point/havoc over target, trigger, corruption
  primitive, corruption target class, timing, payload chain);
- :mod:`repro.fuzz.oracle` / :mod:`repro.fuzz.engine`  the coverage +
  divergence oracle and the seeded campaign loop with greedy
  mutation-reversal minimization and a byte-stable corpus format;
- :mod:`repro.fuzz.faults`  dispatch-time single-bit fault injection
  through ``repro.kernel.dispatch``'s ``insert()`` API, classified by the
  same differential matrix.

Everything is deterministic: a :class:`repro.fuzz.rng.FuzzRNG`
(SplitMix64) is the only randomness source, and the same seed + budget
reproduce the corpus JSON byte-identically.
"""

from repro.fuzz.engine import (
    DEFAULT_BUDGET,
    DEFAULT_SEED,
    SCHEMA,
    FuzzCampaign,
    default_corpus_path,
    load_corpus,
    minimize_divergence,
    replay_corpus,
    replay_entry,
    run_campaign,
    serialize_corpus,
)
from repro.fuzz.faults import (
    CAMPAIGN_SPECS,
    FAULT_SITES,
    FAULT_STAGES,
    FaultInjector,
    FaultSpec,
    run_fault_campaign,
)
from repro.fuzz.genome import (
    Genome,
    genome_from_dict,
    mutate,
    repair,
    seed_genomes,
    spec_for_genome,
)
from repro.fuzz.oracle import (
    FILTERING_BASELINES,
    MATRIX,
    MatrixResult,
    evaluate_genome,
    verdict_of,
)
from repro.fuzz.rng import FuzzRNG

__all__ = [
    "CAMPAIGN_SPECS",
    "DEFAULT_BUDGET",
    "DEFAULT_SEED",
    "FAULT_SITES",
    "FAULT_STAGES",
    "FILTERING_BASELINES",
    "FuzzCampaign",
    "FuzzRNG",
    "FaultInjector",
    "FaultSpec",
    "Genome",
    "MATRIX",
    "MatrixResult",
    "SCHEMA",
    "default_corpus_path",
    "evaluate_genome",
    "genome_from_dict",
    "load_corpus",
    "minimize_divergence",
    "mutate",
    "repair",
    "replay_corpus",
    "replay_entry",
    "run_campaign",
    "run_fault_campaign",
    "seed_genomes",
    "serialize_corpus",
    "spec_for_genome",
    "verdict_of",
]
