"""Deterministic seeded PRNG for the fuzzer.

A self-contained SplitMix64 (Steele et al., "Fast splittable pseudorandom
number generators") so corpus generation never depends on CPython's
``random`` module internals, hash randomization, or wall-clock time: the
same seed produces the same byte-identical corpus on every interpreter
the CI matrix runs (acceptance criterion of ISSUE 9).
"""

_MASK = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def _mix(z):
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9 & _MASK
    z = (z ^ (z >> 27)) * 0x94D049BB133111EB & _MASK
    return z ^ (z >> 31)


class FuzzRNG:
    """SplitMix64 stream with the handful of draws the mutators need."""

    def __init__(self, seed):
        self._state = (seed or 0x5EED) & _MASK

    def next_u64(self):
        self._state = (self._state + _GOLDEN) & _MASK
        return _mix(self._state)

    def randint(self, bound):
        """Uniform-ish integer in ``[0, bound)`` (bound << 2**64, so the
        modulo bias is far below anything a 200-genome budget can see)."""
        if bound <= 0:
            raise ValueError("bound must be positive")
        return self.next_u64() % bound

    def choice(self, seq):
        if not seq:
            raise IndexError("choice from empty sequence")
        return seq[self.randint(len(seq))]

    def chance(self, numerator, denominator):
        """True with probability numerator/denominator."""
        return self.randint(denominator) < numerator

    def fork(self, label):
        """A child stream keyed on the current state and ``label``, so
        subsystems can draw without perturbing the parent's sequence."""
        h = self._state
        for ch in str(label).encode("utf-8"):
            h = _mix((h ^ ch) & _MASK)
        return FuzzRNG(h)
