"""The coverage + divergence oracle: one genome, the whole mechanism matrix.

Every genome is compiled to an :class:`AttackSpec` and run under
``undefended`` (validity: the exploit must actually work) plus **every
registered mechanism** — the matrix is derived from
:data:`repro.mechanisms.registry.FUZZ_MATRIX`, so a newly registered
mechanism (sfip, sfip_origin, ...) is fuzzed automatically and a
forgotten registration fails ``tests/baselines/test_registry.py``
instead of silently escaping coverage.

Each run yields a 3-way verdict — ``allowed`` (the oracle fired),
``killed`` (a mechanism stopped the process before the goal), ``fizzled``
(neither) — plus a **coverage signature** derived from the telemetry bus:
dispatch stages reached (incl. ``verify.*`` sub-stages), the syscall mix
actually dispatched, the blocking context, and the process exit kind.

A *divergence* is a valid genome where one mechanism allowed the goal and
another killed the process: exactly the disagreements that grow Table 6.
"""

from dataclasses import dataclass, field

from repro.attacks.runner import run_attack
from repro.fuzz.genome import repair, spec_for_genome
from repro.mechanisms.registry import FUZZ_MATRIX
from repro.monitor.policy import ContextPolicy

#: matrix order is part of the corpus format — append only (the registry
#: preserves registration order for exactly this reason)
MATRIX = FUZZ_MATRIX

#: the filtering baselines named by the acceptance criteria
FILTERING_BASELINES = ("seccomp_allowlist", "temporal", "debloat")


def _run_mechanism(spec, mechanism):
    if mechanism == "undefended":
        return run_attack(spec, None, "undefended")
    if mechanism == "bastion":
        return run_attack(spec, ContextPolicy.full(), "bastion")
    from repro.bench.harness import CONFIGS

    return run_attack(spec, None, mechanism, defense=CONFIGS[mechanism])


def verdict_of(outcome):
    if outcome.succeeded:
        return "allowed"
    if outcome.blocked:
        return "killed"
    return "fizzled"


@dataclass
class MatrixResult:
    """One genome's differential run across the whole mechanism matrix."""

    genome: object
    outcomes: dict  # mechanism -> AttackOutcome
    tokens: frozenset = frozenset()  # coverage signature
    notes: list = field(default_factory=list)

    @property
    def valid(self):
        return verdict_of(self.outcomes["undefended"]) == "allowed"

    @property
    def pattern(self):
        """mechanism -> verdict for the defended matrix (stable order)."""
        return {m: verdict_of(self.outcomes[m]) for m in MATRIX}

    @property
    def blocked_by(self):
        return {
            m: str(self.outcomes[m].blocked_by)
            for m in MATRIX
            if self.outcomes[m].blocked_by is not None
        }

    def divergent_pairs(self):
        """(allowing, killing) mechanism pairs — kill/allow disagreements
        on a *valid* exploit only."""
        if not self.valid:
            return []
        pattern = self.pattern
        allowing = [m for m in MATRIX if pattern[m] == "allowed"]
        killing = [m for m in MATRIX if pattern[m] == "killed"]
        return [(a, k) for a in allowing for k in killing]

    @property
    def divergent(self):
        return bool(self.divergent_pairs())

    def divergence_key(self):
        """Dedup key: same site, same corruption class, same disagreement
        shape — one representative is enough."""
        pattern = self.pattern
        return (
            self.genome.target,
            self.genome.trigger,
            self.genome.target_class,
            tuple(sorted((m, v) for m, v in pattern.items())),
        )


def _coverage_tokens(mechanism, outcome):
    tokens = {
        "o:%s:%s" % (mechanism, verdict_of(outcome)),
        "x:%s:%s" % (mechanism, outcome.status.kind),
    }
    if outcome.blocked_by is not None:
        tokens.add("b:%s:%s" % (mechanism, outcome.blocked_by))
    for stage, cycles in outcome.stage_cycles.items():
        if cycles:
            tokens.add("g:%s:%s" % (mechanism, stage))
    for syscall in outcome.syscall_counts:
        tokens.add("y:%s:%s" % (mechanism, syscall))
    return tokens


def evaluate_genome(genome):
    """Run one genome through the full differential matrix."""
    genome = repair(genome)
    spec = spec_for_genome(genome)
    outcomes = {}
    tokens = set()
    for mechanism in ("undefended",) + MATRIX:
        outcome = _run_mechanism(spec, mechanism)
        outcomes[mechanism] = outcome
        tokens |= _coverage_tokens(mechanism, outcome)
    return MatrixResult(genome=genome, outcomes=outcomes, tokens=frozenset(tokens))
