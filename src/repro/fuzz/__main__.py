"""CLI: ``python -m repro.fuzz run|minimize|replay|faults``.

- ``run``       a seeded campaign; ``--out`` writes the corpus JSON,
  ``--check`` instead verifies the run reproduces an existing corpus
  byte-identically (the CI fuzz-smoke job);
- ``minimize``  re-minimize one corpus divergence by name;
- ``replay``    re-run pinned divergences and verify verdict patterns;
- ``faults``    the dispatch-time fault campaign's detection matrix.

``--json`` on any subcommand emits machine-readable output.
"""

import argparse
import json
import sys

from repro.fuzz.engine import (
    DEFAULT_BUDGET,
    DEFAULT_SEED,
    default_corpus_path,
    load_corpus,
    minimize_divergence,
    replay_corpus,
    run_campaign,
    serialize_corpus,
)
from repro.fuzz.faults import run_fault_campaign
from repro.fuzz.genome import genome_from_dict
from repro.fuzz.oracle import evaluate_genome


def _progress(args):
    if args.json or args.quiet:
        return lambda msg: None
    return lambda msg: print("  [fuzz] %s" % msg)


def cmd_run(args):
    campaign = run_campaign(
        seed=args.seed, budget=args.budget, progress=_progress(args)
    )
    payload = campaign.to_payload()
    text = serialize_corpus(payload)
    if args.check:
        path = args.check if args.check is not True else default_corpus_path()
        with open(path) as handle:
            pinned = handle.read()
        if text == pinned:
            print(
                "corpus reproduced byte-identically (seed=%d budget=%d, "
                "%d divergences)"
                % (args.seed, args.budget, len(payload["divergences"]))
            )
            return 0
        print("corpus MISMATCH against %s" % path)
        theirs = json.loads(pinned)
        print(
            "  pinned: seed=%s budget=%s divergences=%d coverage=%s"
            % (
                theirs.get("seed"),
                theirs.get("budget"),
                len(theirs.get("divergences", [])),
                theirs.get("coverage_tokens"),
            )
        )
        print(
            "  ours:   seed=%s budget=%s divergences=%d coverage=%s"
            % (
                payload["seed"],
                payload["budget"],
                len(payload["divergences"]),
                payload["coverage_tokens"],
            )
        )
        return 1
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(
            "wrote %s (%d divergences, %d coverage tokens)"
            % (args.out, len(payload["divergences"]), payload["coverage_tokens"])
        )
        return 0
    if args.json:
        print(text, end="")
        return 0
    print(
        "seed=%d budget=%d executed=%d coverage_tokens=%d"
        % (
            payload["seed"],
            payload["budget"],
            payload["executed"],
            payload["coverage_tokens"],
        )
    )
    for entry in payload["divergences"]:
        pairs = ", ".join("%s>%s" % tuple(p) for p in entry["pairs"][:4])
        print("  %-32s %s" % (entry["name"], pairs))
    return 0


def cmd_minimize(args):
    payload = load_corpus(args.corpus)
    matches = [e for e in payload["divergences"] if e["name"] == args.name]
    if not matches:
        print("no corpus divergence named %r" % args.name)
        return 1
    entry = matches[0]
    result = minimize_divergence(evaluate_genome(genome_from_dict(entry["genome"])))
    if args.json:
        print(
            json.dumps(
                {
                    "name": entry["name"],
                    "genome": result.genome.to_dict(),
                    "pattern": result.pattern,
                    "blocked_by": result.blocked_by,
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    print("minimized %s:" % entry["name"])
    for key, value in sorted(result.genome.to_dict().items()):
        print("  %-14s %s" % (key, value))
    print("  pattern: %s" % result.pattern)
    return 0


def cmd_replay(args):
    payload = load_corpus(args.corpus)
    rows = replay_corpus(payload, names=set(args.names) if args.names else None)
    if args.names and len(rows) != len(set(args.names)):
        found = {entry["name"] for entry, _, _ in rows}
        for name in args.names:
            if name not in found:
                print("no corpus divergence named %r" % name)
        return 1
    failures = 0
    report = []
    for entry, ok, result in rows:
        report.append(
            {
                "name": entry["name"],
                "ok": ok,
                "pattern": result.pattern,
                "expected": entry["pattern"],
            }
        )
        if not ok:
            failures += 1
    if args.json:
        print(json.dumps({"replayed": report}, indent=2, sort_keys=True))
    else:
        for row in report:
            print("  %-32s %s" % (row["name"], "ok" if row["ok"] else "DIVERGED"))
        print(
            "%d/%d pinned divergences reproduced" % (len(rows) - failures, len(rows))
        )
    return 1 if failures else 0


def cmd_faults(args):
    result = run_fault_campaign()
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))
        return 0
    mechanisms = result["matrix"]
    width = max(len(m) for m in mechanisms)
    header = "%-28s" % "fault" + "  ".join("%-*s" % (width, m) for m in mechanisms)
    print(header)
    for label in sorted(result["cells"]):
        row = result["cells"][label]
        cells = "  ".join(
            "%-*s" % (width, row[m]["class"]) for m in mechanisms
        )
        print("%-28s%s" % (label, cells))
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="coverage-guided differential attack fuzzing",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run a seeded fuzz campaign")
    run_p.add_argument("--seed", type=int, default=DEFAULT_SEED)
    run_p.add_argument("--budget", type=int, default=DEFAULT_BUDGET)
    run_p.add_argument("--out", help="write the corpus JSON here")
    run_p.add_argument(
        "--check",
        nargs="?",
        const=True,
        default=None,
        help="verify the run reproduces this corpus byte-identically "
        "(default: the pinned tests/fixtures/fuzz_corpus.json)",
    )
    run_p.set_defaults(func=cmd_run)

    min_p = sub.add_parser("minimize", help="re-minimize a corpus divergence")
    min_p.add_argument("name")
    min_p.add_argument("--corpus", default=None)
    min_p.set_defaults(func=cmd_minimize)

    rep_p = sub.add_parser("replay", help="replay pinned corpus divergences")
    rep_p.add_argument("names", nargs="*")
    rep_p.add_argument("--corpus", default=None)
    rep_p.set_defaults(func=cmd_replay)

    fault_p = sub.add_parser("faults", help="dispatch-time fault campaign")
    fault_p.set_defaults(func=cmd_faults)

    for p in (run_p, min_p, rep_p, fault_p):
        p.add_argument("--json", action="store_true")
        p.add_argument("--quiet", action="store_true")

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
