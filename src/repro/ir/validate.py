"""Structural validation of IR modules.

Run before loading: catches malformed programs early with precise messages
instead of confusing interpreter faults later.
"""

from repro.errors import IRValidationError
from repro.ir.dataflow import build_block_graph, definitely_assigned
from repro.ir.instructions import (
    AddrGlobal,
    BinOp,
    Branch,
    BINOPS,
    Call,
    CallIndirect,
    FuncAddr,
    Gep,
    Imm,
    Intrinsic,
    Jump,
    Label,
    Ret,
    Syscall,
    Var,
    CTX_BIND_CONST,
    CTX_BIND_MEM,
    CTX_WRITE_MEM,
    HARNESS_INTRINSICS,
)
from repro.syscalls.table import SYSCALL_BY_NAME

_KNOWN_INTRINSICS = set(HARNESS_INTRINSICS) | {
    CTX_WRITE_MEM,
    CTX_BIND_MEM,
    CTX_BIND_CONST,
}


def validate_module(module):
    """Validate ``module``; raises :class:`IRValidationError` on problems.

    Checks: entry point exists; labels resolve; direct callees exist;
    syscall names are in the table; struct/field references resolve; binop
    operators are known; functions end in a terminator; globals referenced
    by AddrGlobal exist.

    Returns the module (for chaining).
    """
    if module.entry not in module.functions:
        raise IRValidationError(
            "module %s has no entry function %r" % (module.name, module.entry)
        )
    for func in module.functions.values():
        _validate_function(module, func)
    return module


def _err(func, idx, message):
    raise IRValidationError("%s[%d]: %s" % (func.name, idx, message))


def _validate_function(module, func):
    labels = {}
    for idx, instr in enumerate(func.body):
        if isinstance(instr, Label):
            if instr.name in labels:
                _err(func, idx, "duplicate label %r" % instr.name)
            labels[instr.name] = idx

    if not func.body:
        raise IRValidationError("function %s has an empty body" % func.name)
    last = func.body[-1]
    if not isinstance(last, (Ret, Jump)):
        raise IRValidationError(
            "function %s does not end in Ret/Jump (falls off the end)" % func.name
        )

    for idx, instr in enumerate(func.body):
        for op in instr.uses():
            if not isinstance(op, (Var, Imm)):
                _err(func, idx, "operand %r is not Var/Imm" % (op,))
        if isinstance(instr, BinOp) and instr.op not in BINOPS:
            _err(func, idx, "unknown binary operator %r" % instr.op)
        elif isinstance(instr, (Jump,)):
            if instr.label not in labels:
                _err(func, idx, "jump to unknown label %r" % instr.label)
        elif isinstance(instr, Branch):
            for target in (instr.then_label, instr.else_label):
                if target not in labels:
                    _err(func, idx, "branch to unknown label %r" % target)
        elif isinstance(instr, Call):
            if instr.callee not in module.functions:
                _err(func, idx, "call to undefined function %r" % instr.callee)
        elif isinstance(instr, FuncAddr):
            if instr.func not in module.functions:
                _err(func, idx, "address of undefined function %r" % instr.func)
        elif isinstance(instr, Syscall):
            if instr.name not in SYSCALL_BY_NAME:
                _err(func, idx, "unknown syscall %r" % instr.name)
            if len(instr.args) > 6:
                _err(func, idx, "syscall %r takes at most 6 args" % instr.name)
        elif isinstance(instr, Gep):
            if instr.struct not in module.types:
                _err(func, idx, "unknown struct %r" % instr.struct)
            struct = module.types.get(instr.struct)
            if instr.field_name not in struct.fields:
                _err(
                    func,
                    idx,
                    "struct %s has no field %r" % (instr.struct, instr.field_name),
                )
        elif isinstance(instr, AddrGlobal):
            if instr.name not in module.globals:
                _err(func, idx, "unknown global %r" % instr.name)
        elif isinstance(instr, Intrinsic):
            if instr.name not in _KNOWN_INTRINSICS:
                _err(func, idx, "unknown intrinsic %r" % instr.name)
        elif isinstance(instr, CallIndirect):
            if not instr.args and instr.sig is None:
                # fine — sig defaults by arity at CFI-check time
                pass

    _check_definite_assignment(func)


def _check_definite_assignment(func):
    """Reject uses of virtual registers undefined on some path from entry.

    This is a whole-CFG check: a register defined only in one arm of a
    branch (or only inside a loop body) is still undefined on the paths
    that skip that block.  Parameters and address-taken locals (real frame
    slots, initializable through memory) count as assigned at entry.
    """
    graph = build_block_graph(func)
    violations = definitely_assigned(func, graph)
    if violations:
        first = violations[0]
        raise IRValidationError(
            "%s[%d] (block %d): instruction uses %%%s before any definition "
            "reaches it" % (first.func, first.index, first.block, first.var)
        )
