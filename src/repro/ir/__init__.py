"""A small typed IR — the simulation's stand-in for C compiled to LLVM IR.

Workload applications (mini-NGINX, mini-SQLite, mini-vsftpd), the libc layer,
and the attack-target snippets are all written in this IR via
:class:`repro.ir.builder.ModuleBuilder`.  The BASTION compiler pass
(:mod:`repro.compiler`) analyzes and instruments IR modules; the interpreter
CPU (:mod:`repro.vm`) executes them against the simulated kernel.

Design notes:

- Variables are *memory-backed*: the VM allocates one simulated-memory slot
  per local in the stack frame, so an attacker with arbitrary write can
  corrupt any variable — exactly the threat model of §4.
- Control flow uses labels and branches inside a flat instruction list;
  calls are direct (``Call``), indirect (``CallIndirect``), or syscall
  instructions (``Syscall``, normally only inside libc wrappers).
- Struct field access goes through ``Gep`` carrying the struct type name, so
  the argument-integrity analysis can be field-sensitive (§6.3.3).
"""

from repro.ir.types import StructType, GlobalVar
from repro.ir.instructions import (
    Var,
    Imm,
    Operand,
    Instr,
    Const,
    Move,
    BinOp,
    Load,
    Store,
    AddrLocal,
    AddrGlobal,
    Gep,
    Index,
    Call,
    CallIndirect,
    Syscall,
    FuncAddr,
    Label,
    Jump,
    Branch,
    Ret,
    Intrinsic,
)
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.builder import ModuleBuilder, FunctionBuilder
from repro.ir.validate import validate_module
from repro.ir.printer import format_module, format_function
from repro.ir.parser import parse_module, parse_instr
from repro.ir.callgraph import CallGraph, build_callgraph
from repro.ir.dataflow import (
    BlockGraph,
    build_block_graph,
    def_use_chains,
    definitely_assigned,
    dominators,
)

__all__ = [
    "StructType",
    "GlobalVar",
    "Var",
    "Imm",
    "Operand",
    "Instr",
    "Const",
    "Move",
    "BinOp",
    "Load",
    "Store",
    "AddrLocal",
    "AddrGlobal",
    "Gep",
    "Index",
    "Call",
    "CallIndirect",
    "Syscall",
    "FuncAddr",
    "Label",
    "Jump",
    "Branch",
    "Ret",
    "Intrinsic",
    "Function",
    "Module",
    "ModuleBuilder",
    "FunctionBuilder",
    "validate_module",
    "format_module",
    "format_function",
    "parse_module",
    "parse_instr",
    "CallGraph",
    "build_callgraph",
    "BlockGraph",
    "build_block_graph",
    "def_use_chains",
    "definitely_assigned",
    "dominators",
]
