"""IR-level type information: struct layouts and global variables.

The IR is word-oriented: every scalar, pointer, and struct field occupies
exactly one simulated-memory slot.  Struct types exist so that the
argument-integrity analysis can be *field-sensitive* — sensitivity attaches
to ``(struct, field)`` pairs, not whole objects (§6.3.3, Figure 2's
``gshm->size``).
"""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class StructType:
    """A named record type whose fields each occupy one slot.

    Example::

        StructType("ngx_exec_ctx_t", ("path", "argv", "envp"))
    """

    name: str
    fields: tuple

    def __post_init__(self):
        if len(set(self.fields)) != len(self.fields):
            raise ValueError("duplicate field in struct %r" % self.name)

    @property
    def size(self):
        """Size in slots."""
        return len(self.fields)

    def offset(self, field_name):
        """Slot offset of ``field_name`` within the struct.

        Raises:
            KeyError: if the field does not exist.
        """
        try:
            return self.fields.index(field_name)
        except ValueError:
            raise KeyError(
                "struct %s has no field %r" % (self.name, field_name)
            ) from None

    def field_at(self, offset):
        """Inverse of :meth:`offset`."""
        return self.fields[offset]


@dataclass
class GlobalVar:
    """A module-level variable laid out in the data segment.

    Attributes:
        name: symbol name.
        size: size in slots (ignored when ``init`` is a string).
        init: initial contents — ``None`` (zeroed), a list of ints (one per
            slot), or a ``str`` (one character code per slot plus a NUL
            terminator, C-string style).
        struct: optional struct type name this global is an instance of
            (enables field-sensitive tracking of globals).
    """

    name: str
    size: int = 1
    init: object = None
    struct: str = None

    def __post_init__(self):
        if isinstance(self.init, str):
            self.size = len(self.init) + 1
        elif isinstance(self.init, (list, tuple)):
            self.init = list(self.init)
            if self.size < len(self.init):
                self.size = len(self.init)
        elif self.init is not None and not isinstance(self.init, int):
            raise TypeError("global init must be None, int, list, or str")
        if isinstance(self.init, int):
            self.init = [self.init]
        if self.size < 1:
            raise ValueError("global %r must occupy at least one slot" % self.name)

    def initial_words(self):
        """The initial slot values written by the loader."""
        if self.init is None:
            return [0] * self.size
        if isinstance(self.init, str):
            return [ord(c) for c in self.init] + [0]
        words = list(self.init) + [0] * (self.size - len(self.init))
        return words


@dataclass
class TypeTable:
    """Registry of struct types for a module."""

    structs: dict = field(default_factory=dict)

    def define(self, struct_type):
        if struct_type.name in self.structs:
            raise ValueError("struct %r already defined" % struct_type.name)
        self.structs[struct_type.name] = struct_type
        return struct_type

    def get(self, name):
        return self.structs[name]

    def __contains__(self, name):
        return name in self.structs
