"""Dataflow utilities over the flat-list IR.

The IR keeps each function as a flat instruction list with labels and
branches, which is convenient for the interpreter but awkward for static
analysis.  This module recovers the classical structures the analysis
passes (:mod:`repro.analyze`) and the validator need:

- :func:`build_block_graph` — basic blocks plus predecessor/successor edges;
- :func:`dominators` — per-block dominator sets (iterative fixpoint);
- :func:`def_use_chains` — per-variable definition and use positions;
- :func:`definitely_assigned` — forward "definitely assigned on every path"
  analysis, used to flag uses of virtual registers that some path reaches
  before any definition.

Locals are memory-backed in the VM, so a variable whose address is taken
(:class:`~repro.ir.instructions.AddrLocal`) can legitimately be initialized
through memory; the definite-assignment analysis treats such variables as
assigned from function entry, exactly like parameters.
"""

from dataclasses import dataclass, field

from repro.ir.instructions import AddrLocal, Branch, Jump, Label, Var


@dataclass
class Block:
    """One basic block: instruction indices ``[start, end)`` of the body."""

    index: int  # block number, in body order
    start: int
    end: int

    def __contains__(self, instr_index):
        return self.start <= instr_index < self.end


@dataclass
class BlockGraph:
    """Basic blocks of one function plus the edges between them."""

    func: object
    blocks: list = field(default_factory=list)
    succs: dict = field(default_factory=dict)  # block index -> [block index]
    preds: dict = field(default_factory=dict)  # block index -> [block index]

    def block_of(self, instr_index):
        """The :class:`Block` containing body position ``instr_index``."""
        for block in self.blocks:
            if instr_index in block:
                return block
        raise IndexError("no block contains index %d" % instr_index)

    def entry(self):
        return self.blocks[0]

    def reachable(self):
        """Block indices reachable from the entry block."""
        seen = set()
        stack = [0] if self.blocks else []
        while stack:
            idx = stack.pop()
            if idx in seen:
                continue
            seen.add(idx)
            stack.extend(self.succs.get(idx, ()))
        return seen


def build_block_graph(func):
    """Split ``func.body`` into basic blocks and connect them.

    Leaders are: position 0, every :class:`Label`, and every instruction
    following a terminator.  A block falls through to the next one unless it
    ends in an unconditional transfer (``Jump``/``Ret``).
    """
    body = func.body
    graph = BlockGraph(func)
    if not body:
        return graph

    leaders = {0}
    for idx, instr in enumerate(body):
        if isinstance(instr, Label):
            leaders.add(idx)
        if getattr(instr, "is_terminator", False) and idx + 1 < len(body):
            leaders.add(idx + 1)
    starts = sorted(leaders)
    for bi, start in enumerate(starts):
        end = starts[bi + 1] if bi + 1 < len(starts) else len(body)
        graph.blocks.append(Block(bi, start, end))

    block_at = {}  # body index of a leader -> block index
    for block in graph.blocks:
        block_at[block.start] = block.index
    label_block = {
        instr.name: block_at[idx]
        for idx, instr in enumerate(body)
        if isinstance(instr, Label)
    }

    for block in graph.blocks:
        last = body[block.end - 1]
        targets = []
        if isinstance(last, Jump):
            targets.append(label_block[last.label])
        elif isinstance(last, Branch):
            targets.append(label_block[last.then_label])
            targets.append(label_block[last.else_label])
        elif not getattr(last, "is_terminator", False):
            if block.index + 1 < len(graph.blocks):
                targets.append(block.index + 1)
        graph.succs[block.index] = targets
        for t in targets:
            graph.preds.setdefault(t, []).append(block.index)
    for block in graph.blocks:
        graph.preds.setdefault(block.index, [])
    return graph


def dominators(graph):
    """Per-block dominator sets: ``{block index: {dominating block indices}}``.

    Standard iterative dataflow; unreachable blocks dominate nothing and are
    reported as dominated only by themselves.
    """
    n = len(graph.blocks)
    if n == 0:
        return {}
    reachable = graph.reachable()
    all_blocks = set(range(n))
    dom = {0: {0}}
    for i in range(1, n):
        dom[i] = set(all_blocks) if i in reachable else {i}
    changed = True
    while changed:
        changed = False
        for i in range(1, n):
            if i not in reachable:
                continue
            preds = [p for p in graph.preds.get(i, ()) if p in reachable]
            if not preds:
                new = {i}
            else:
                new = set.intersection(*(dom[p] for p in preds)) | {i}
            if new != dom[i]:
                dom[i] = new
                changed = True
    return dom


def def_use_chains(func):
    """``(defs, uses)``: variable name -> sorted body positions.

    ``defs`` records every position whose instruction defines the variable;
    ``uses`` every position reading it as an operand.
    """
    defs, uses = {}, {}
    for idx, instr in enumerate(func.body):
        for name in instr.defs():
            if name is not None:
                defs.setdefault(name, []).append(idx)
        for op in instr.uses():
            if isinstance(op, Var):
                uses.setdefault(op.name, []).append(idx)
    return defs, uses


@dataclass(frozen=True)
class UnassignedUse:
    """One use of a virtual register that some path reaches undefined."""

    func: str
    block: int
    index: int
    var: str

    def __str__(self):
        return "%s[%d] (block %d): %%%s used before any definition" % (
            self.func,
            self.index,
            self.block,
            self.var,
        )


def definitely_assigned(func, graph=None):
    """Uses of virtual registers not defined on every path from entry.

    Parameters and address-taken locals (which may be initialized through
    memory — they are real frame slots) count as assigned at entry.  Only
    reachable blocks are checked.  Returns a list of :class:`UnassignedUse`.
    """
    graph = graph or build_block_graph(func)
    if not graph.blocks:
        return []

    entry_assigned = set(func.params)
    for instr in func.body:
        if isinstance(instr, AddrLocal):
            entry_assigned.add(instr.var)

    body = func.body
    reachable = graph.reachable()

    def transfer(assigned, block, record=None):
        out = set(assigned)
        for idx in range(block.start, block.end):
            instr = body[idx]
            if record is not None:
                for op in instr.uses():
                    if isinstance(op, Var) and op.name not in out:
                        record.append(
                            UnassignedUse(func.name, block.index, idx, op.name)
                        )
            for name in instr.defs():
                if name is not None:
                    out.add(name)
        return out

    every = {name for instr in body for name in instr.defs() if name is not None}
    every |= entry_assigned
    in_sets = {
        b.index: (set(entry_assigned) if b.index == 0 else set(every))
        for b in graph.blocks
    }
    out_sets = {}
    changed = True
    while changed:
        changed = False
        for block in graph.blocks:
            if block.index not in reachable:
                continue
            preds = [p for p in graph.preds.get(block.index, ()) if p in reachable]
            if block.index == 0:
                # the virtual function-start edge carries only entry_assigned,
                # so the meet is entry_assigned even when entry is a loop head
                new_in = set(entry_assigned)
            elif preds:
                new_in = set.intersection(*(out_sets.get(p, every) for p in preds))
            else:
                new_in = set(entry_assigned)
            new_out = transfer(new_in, block)
            if new_in != in_sets[block.index] or new_out != out_sets.get(block.index):
                in_sets[block.index] = new_in
                out_sets[block.index] = new_out
                changed = True

    violations = []
    for block in graph.blocks:
        if block.index not in reachable:
            continue
        transfer(in_sets[block.index], block, record=violations)
    return violations
