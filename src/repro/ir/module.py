"""IR module: the unit of compilation, loading, and protection."""

import copy

from repro.errors import IRError
from repro.ir.types import TypeTable, GlobalVar


class Module:
    """A whole program: functions, globals, and struct types.

    Attributes:
        name: module (program) name, used in reports.
        functions: ordered dict of name -> :class:`repro.ir.function.Function`.
        globals: ordered dict of name -> :class:`repro.ir.types.GlobalVar`.
        types: :class:`repro.ir.types.TypeTable` of struct definitions.
        entry: entry-point function name (default ``main``).
    """

    def __init__(self, name="a.out", entry="main"):
        self.name = name
        self.entry = entry
        self.functions = {}
        self.globals = {}
        self.types = TypeTable()

    def add_function(self, function):
        if function.name in self.functions:
            raise IRError("function %r already defined" % function.name)
        self.functions[function.name] = function
        return function

    def add_global(self, global_var):
        if global_var.name in self.globals:
            raise IRError("global %r already defined" % global_var.name)
        if not isinstance(global_var, GlobalVar):
            raise IRError("add_global expects a GlobalVar")
        self.globals[global_var.name] = global_var
        return global_var

    def function(self, name):
        try:
            return self.functions[name]
        except KeyError:
            raise IRError("no function %r in module %s" % (name, self.name)) from None

    def has_function(self, name):
        return name in self.functions

    def struct(self, name):
        return self.types.get(name)

    def clone(self):
        """Deep copy — the instrumenter works on a copy, never in place."""
        return copy.deepcopy(self)

    def instruction_count(self):
        return sum(len(f.body) for f in self.functions.values())

    def __repr__(self):
        return "<Module %s: %d functions, %d globals, %d instrs>" % (
            self.name,
            len(self.functions),
            len(self.globals),
            self.instruction_count(),
        )
