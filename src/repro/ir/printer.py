"""Human-readable IR dumps (for docs, debugging, and golden tests)."""

from repro.ir.instructions import (
    AddrGlobal,
    AddrLocal,
    BinOp,
    Branch,
    Call,
    CallIndirect,
    Const,
    FuncAddr,
    Gep,
    Index,
    Intrinsic,
    Jump,
    Label,
    Load,
    Move,
    Ret,
    Store,
    Syscall,
)


def _ops(args):
    return ", ".join(repr(a) for a in args)


def format_instr(instr):
    """One-line rendering of a single instruction."""
    if isinstance(instr, Const):
        return "%%%s = const %d" % (instr.dst, instr.value)
    if isinstance(instr, Move):
        return "%%%s = %r" % (instr.dst, instr.src)
    if isinstance(instr, BinOp):
        return "%%%s = %r %s %r" % (instr.dst, instr.a, instr.op, instr.b)
    if isinstance(instr, Load):
        return "%%%s = load %r" % (instr.dst, instr.addr)
    if isinstance(instr, Store):
        return "store %r <- %r" % (instr.addr, instr.value)
    if isinstance(instr, AddrLocal):
        return "%%%s = &local %s" % (instr.dst, instr.var)
    if isinstance(instr, AddrGlobal):
        return "%%%s = &global %s" % (instr.dst, instr.name)
    if isinstance(instr, Gep):
        return "%%%s = gep %r, %s.%s" % (
            instr.dst,
            instr.base,
            instr.struct,
            instr.field_name,
        )
    if isinstance(instr, Index):
        return "%%%s = index %r + %r * %d" % (
            instr.dst,
            instr.base,
            instr.index,
            instr.scale,
        )
    if isinstance(instr, Call):
        lhs = "%%%s = " % instr.dst if instr.dst else ""
        return "%scall %s(%s)" % (lhs, instr.callee, _ops(instr.args))
    if isinstance(instr, CallIndirect):
        lhs = "%%%s = " % instr.dst if instr.dst else ""
        return "%sicall %r(%s) sig=%s" % (lhs, instr.target, _ops(instr.args), instr.sig)
    if isinstance(instr, Syscall):
        lhs = "%%%s = " % instr.dst if instr.dst else ""
        return "%ssyscall %s(%s)" % (lhs, instr.name, _ops(instr.args))
    if isinstance(instr, FuncAddr):
        return "%%%s = &func %s" % (instr.dst, instr.func)
    if isinstance(instr, Label):
        return "%s:" % instr.name
    if isinstance(instr, Jump):
        return "jump %s" % instr.label
    if isinstance(instr, Branch):
        return "branch %r ? %s : %s" % (instr.cond, instr.then_label, instr.else_label)
    if isinstance(instr, Ret):
        return "ret %r" % (instr.value,) if instr.value is not None else "ret"
    if isinstance(instr, Intrinsic):
        lhs = "%%%s = " % instr.dst if instr.dst else ""
        meta = (" " + repr(instr.meta)) if instr.meta else ""
        return "%s@%s(%s)%s" % (lhs, instr.name, _ops(instr.args), meta)
    return repr(instr)


def format_function(func):
    """Multi-line rendering of one function (parseable by the IR parser)."""
    wrapper = " wrapper" if func.is_wrapper else ""
    lines = [
        "func %s(%s) sig=%s%s {"
        % (func.name, ", ".join(func.params), func.sig, wrapper)
    ]
    for idx, instr in enumerate(func.body):
        prefix = "" if isinstance(instr, Label) else "  "
        lines.append("%s%3d: %s" % (prefix, idx, format_instr(instr)))
    lines.append("}")
    return "\n".join(lines)


def _escape(text):
    return (
        text.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
        .replace("\r", "\\r")
        .replace("\t", "\\t")
    )


def _format_global(gvar):
    if isinstance(gvar.init, str):
        return 'global %s = "%s"' % (gvar.name, _escape(gvar.init))
    text = "global %s[%d]" % (gvar.name, gvar.size)
    if gvar.init:
        text += " = %s" % ",".join(str(v) for v in gvar.init)
    if gvar.struct:
        text += " struct=%s" % gvar.struct
    return text


def format_module(module):
    """Multi-line rendering of a whole module (parseable back)."""
    lines = ["module %s (entry=%s)" % (module.name, module.entry)]
    for struct in module.types.structs.values():
        lines.append("struct %s { %s }" % (struct.name, ", ".join(struct.fields)))
    for gvar in module.globals.values():
        lines.append(_format_global(gvar))
    for func in module.functions.values():
        lines.append("")
        lines.append(format_function(func))
    return "\n".join(lines)
