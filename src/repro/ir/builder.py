"""Fluent builders for writing IR programs by hand.

The workload applications are built with these.  Typical shape::

    mb = ModuleBuilder("nginx")
    mb.struct("ngx_exec_ctx_t", ["path", "argv", "envp"])
    mb.global_string("g_binary", "/usr/sbin/nginx")

    f = mb.function("ngx_execute_proc", params=["cycle", "data"])
    path = f.gep(f.p("data"), "ngx_exec_ctx_t", "path")
    pathv = f.load(path)
    rc = f.call("execve", [pathv, 0, 0])
    f.ret(rc)

Every value-producing method returns a :class:`repro.ir.instructions.Var`
naming a fresh temporary (or the explicit ``dst`` you pass).
"""

from repro.errors import IRError
from repro.ir.instructions import (
    AddrGlobal,
    AddrLocal,
    BinOp,
    Branch,
    Call,
    CallIndirect,
    Const,
    FuncAddr,
    Gep,
    Index,
    Intrinsic,
    Jump,
    Label,
    Load,
    Move,
    Ret,
    Store,
    Syscall,
    Var,
    as_operand,
)
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.types import GlobalVar, StructType


class FunctionBuilder:
    """Builds one function; obtained from :meth:`ModuleBuilder.function`."""

    def __init__(self, function):
        self.func = function
        self._temp = 0
        self._label = 0

    # -- naming helpers --------------------------------------------------

    def _fresh(self, dst):
        if dst is not None:
            return dst
        self._temp += 1
        return "t%d" % self._temp

    def fresh_label(self, hint="L"):
        """A label name unique within this function."""
        self._label += 1
        return "%s%d" % (hint, self._label)

    def p(self, name):
        """Reference a parameter/local as an operand."""
        if name not in self.func.params:
            # allow referencing locals too; validator catches true unknowns
            pass
        return Var(name)

    var = p

    # -- straight-line instructions --------------------------------------

    def const(self, value, dst=None):
        dst = self._fresh(dst)
        self.func.append(Const(dst, int(value)))
        return Var(dst)

    def move(self, src, dst=None):
        dst = self._fresh(dst)
        self.func.append(Move(dst, as_operand(src)))
        return Var(dst)

    def binop(self, op, a, b, dst=None):
        dst = self._fresh(dst)
        self.func.append(BinOp(dst, op, as_operand(a), as_operand(b)))
        return Var(dst)

    def add(self, a, b, dst=None):
        return self.binop("+", a, b, dst)

    def sub(self, a, b, dst=None):
        return self.binop("-", a, b, dst)

    def mul(self, a, b, dst=None):
        return self.binop("*", a, b, dst)

    def eq(self, a, b, dst=None):
        return self.binop("==", a, b, dst)

    def ne(self, a, b, dst=None):
        return self.binop("!=", a, b, dst)

    def lt(self, a, b, dst=None):
        return self.binop("<", a, b, dst)

    def load(self, addr, dst=None):
        dst = self._fresh(dst)
        self.func.append(Load(dst, as_operand(addr)))
        return Var(dst)

    def store(self, addr, value):
        self.func.append(Store(as_operand(addr), as_operand(value)))

    def addr_local(self, var_name, dst=None):
        dst = self._fresh(dst)
        self.func.append(AddrLocal(dst, var_name))
        return Var(dst)

    def addr_global(self, global_name, dst=None):
        dst = self._fresh(dst)
        self.func.append(AddrGlobal(dst, global_name))
        return Var(dst)

    def gep(self, base, struct, field_name, dst=None):
        dst = self._fresh(dst)
        self.func.append(Gep(dst, as_operand(base), struct, field_name))
        return Var(dst)

    def index(self, base, idx, scale=1, dst=None):
        dst = self._fresh(dst)
        self.func.append(Index(dst, as_operand(base), as_operand(idx), scale))
        return Var(dst)

    def call(self, callee, args=(), dst=None, void=False):
        dst = None if void else self._fresh(dst)
        self.func.append(Call(dst, callee, [as_operand(a) for a in args]))
        return Var(dst) if dst is not None else None

    def icall(self, target, args=(), sig=None, dst=None, void=False):
        dst = None if void else self._fresh(dst)
        self.func.append(
            CallIndirect(dst, as_operand(target), [as_operand(a) for a in args], sig)
        )
        return Var(dst) if dst is not None else None

    def syscall(self, name, args=(), dst=None):
        dst = self._fresh(dst)
        self.func.append(Syscall(dst, name, [as_operand(a) for a in args]))
        return Var(dst)

    def funcaddr(self, func_name, dst=None):
        dst = self._fresh(dst)
        self.func.append(FuncAddr(dst, func_name))
        return Var(dst)

    def intrinsic(self, name, args=(), dst=None, **meta):
        self.func.append(
            Intrinsic(name, [as_operand(a) for a in args], dst, dict(meta))
        )
        return Var(dst) if dst is not None else None

    def hook(self, point_name):
        """An attack/test hook point (no-op unless a hook is registered)."""
        self.intrinsic("hook", [], point=point_name)

    def burn(self, cycles):
        """Charge ``cycles`` of elided computation to the cost model."""
        self.intrinsic("cycle_burn", [as_operand(cycles)])

    # -- control flow -----------------------------------------------------

    def label(self, name):
        self.func.append(Label(name))
        return name

    def jump(self, label):
        self.func.append(Jump(label))

    def branch(self, cond, then_label, else_label):
        self.func.append(Branch(as_operand(cond), then_label, else_label))

    def ret(self, value=None):
        self.func.append(Ret(as_operand(value) if value is not None else None))

    # -- structured helpers ------------------------------------------------

    def loop_range(self, count_operand, body):
        """Emit ``for i in range(count): body(i_var)`` and return nothing.

        ``body`` is a callback receiving the loop-counter :class:`Var`.
        """
        i = self.const(0)
        head = self.fresh_label("loop_head")
        done = self.fresh_label("loop_done")
        body_l = self.fresh_label("loop_body")
        self.label(head)
        cond = self.binop("<", i, count_operand)
        self.branch(cond, body_l, done)
        self.label(body_l)
        body(i)
        nxt = self.add(i, 1)
        self.move(nxt, dst=i.name)
        self.jump(head)
        self.label(done)

    def if_then(self, cond, then_body, else_body=None):
        """Emit an if/else with callback bodies."""
        then_l = self.fresh_label("if_then")
        else_l = self.fresh_label("if_else")
        done = self.fresh_label("if_done")
        self.branch(cond, then_l, else_l if else_body else done)
        self.label(then_l)
        then_body()
        self.jump(done)
        if else_body:
            self.label(else_l)
            else_body()
            self.jump(done)
        self.label(done)


class ModuleBuilder:
    """Builds a whole :class:`repro.ir.module.Module`."""

    def __init__(self, name="a.out", entry="main"):
        self.module = Module(name, entry)

    def struct(self, name, fields):
        return self.module.types.define(StructType(name, tuple(fields)))

    def global_var(self, name, size=1, init=None, struct=None):
        return self.module.add_global(GlobalVar(name, size, init, struct))

    def global_string(self, name, text):
        return self.module.add_global(GlobalVar(name, init=text))

    def global_words(self, name, words):
        return self.module.add_global(GlobalVar(name, size=len(words), init=list(words)))

    def function(self, name, params=None, sig=None):
        func = Function(name, params, sig)
        self.module.add_function(func)
        return FunctionBuilder(func)

    def extend(self, other_module):
        """Merge another module's functions/globals/types (libc linking)."""
        for struct_type in other_module.types.structs.values():
            if struct_type.name not in self.module.types:
                self.module.types.define(struct_type)
        for gvar in other_module.globals.values():
            if gvar.name in self.module.globals:
                raise IRError("global %r defined in both modules" % gvar.name)
            self.module.add_global(gvar)
        for func in other_module.functions.values():
            self.module.add_function(func)
        return self

    def build(self):
        return self.module
