"""Textual IR parser — the inverse of :mod:`repro.ir.printer`.

Lets programs be written (or golden-tested) as text::

    module demo (entry=main)
    struct pair_t { a, b }
    global g_buf[8]
    global g_msg = "hello"

    func leaf(x) sig=fn1 {
      %t1 = %x + $1
      ret %t1
    }

    func main() sig=fn0 {
      %r = call leaf($41)
      ret %r
    }

The grammar matches :func:`repro.ir.printer.format_instr` output (modulo
the printer's line numbers, which the parser ignores), so
``parse_module(format_module(m))`` round-trips any module.
"""

import re

from repro.errors import IRError
from repro.ir.instructions import (
    AddrGlobal,
    AddrLocal,
    BinOp,
    BINOPS,
    Branch,
    Call,
    CallIndirect,
    Const,
    FuncAddr,
    Gep,
    Imm,
    Index,
    Intrinsic,
    Jump,
    Label,
    Load,
    Move,
    Ret,
    Store,
    Syscall,
    Var,
)
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.types import GlobalVar, StructType

_OPERAND = r"(%[A-Za-z_][\w.]*|\$-?\d+)"
_NAME = r"[A-Za-z_][\w.]*"


def _operand(text):
    text = text.strip()
    if text.startswith("%"):
        return Var(text[1:])
    if text.startswith("$"):
        return Imm(int(text[1:]))
    raise IRError("bad operand %r" % text)


def _operand_list(text):
    text = text.strip()
    if not text:
        return []
    return [_operand(part) for part in text.split(",")]


_PATTERNS = [
    (
        re.compile(r"^%(?P<d>{n}) = const (?P<v>-?\d+)$".format(n=_NAME)),
        lambda m: Const(m["d"], int(m["v"])),
    ),
    (
        re.compile(r"^%(?P<d>{n}) = load (?P<a>{o})$".format(n=_NAME, o=_OPERAND)),
        lambda m: Load(m["d"], _operand(m["a"])),
    ),
    (
        re.compile(r"^store (?P<a>{o}) <- (?P<v>{o})$".format(o=_OPERAND)),
        lambda m: Store(_operand(m["a"]), _operand(m["v"])),
    ),
    (
        re.compile(r"^%(?P<d>{n}) = &local (?P<v>{n})$".format(n=_NAME)),
        lambda m: AddrLocal(m["d"], m["v"]),
    ),
    (
        re.compile(r"^%(?P<d>{n}) = &global (?P<g>{n})$".format(n=_NAME)),
        lambda m: AddrGlobal(m["d"], m["g"]),
    ),
    (
        re.compile(r"^%(?P<d>{n}) = &func (?P<f>{n})$".format(n=_NAME)),
        lambda m: FuncAddr(m["d"], m["f"]),
    ),
    (
        re.compile(
            r"^%(?P<d>{n}) = gep (?P<b>{o}), (?P<s>{n})\.(?P<f>{n})$".format(
                n=_NAME, o=_OPERAND
            )
        ),
        lambda m: Gep(m["d"], _operand(m["b"]), m["s"], m["f"]),
    ),
    (
        re.compile(
            r"^%(?P<d>{n}) = index (?P<b>{o}) \+ (?P<i>{o}) \* (?P<s>\d+)$".format(
                n=_NAME, o=_OPERAND
            )
        ),
        lambda m: Index(m["d"], _operand(m["b"]), _operand(m["i"]), int(m["s"])),
    ),
    (
        re.compile(
            r"^(?:%(?P<d>{n}) = )?call (?P<f>{n})\((?P<args>.*)\)$".format(n=_NAME)
        ),
        lambda m: Call(m["d"], m["f"], _operand_list(m["args"])),
    ),
    (
        re.compile(
            r"^(?:%(?P<d>{n}) = )?icall (?P<t>{o})\((?P<args>.*)\) sig=(?P<s>\S+)$".format(
                n=_NAME, o=_OPERAND
            )
        ),
        lambda m: CallIndirect(
            m["d"],
            _operand(m["t"]),
            _operand_list(m["args"]),
            None if m["s"] == "None" else m["s"],
        ),
    ),
    (
        re.compile(
            r"^(?:%(?P<d>{n}) = )?syscall (?P<f>{n})\((?P<args>.*)\)$".format(n=_NAME)
        ),
        lambda m: Syscall(m["d"], m["f"], _operand_list(m["args"])),
    ),
    (
        re.compile(r"^jump (?P<l>{n})$".format(n=_NAME)),
        lambda m: Jump(m["l"]),
    ),
    (
        re.compile(
            r"^branch (?P<c>{o}) \? (?P<t>{n}) : (?P<e>{n})$".format(
                n=_NAME, o=_OPERAND
            )
        ),
        lambda m: Branch(_operand(m["c"]), m["t"], m["e"]),
    ),
    (
        re.compile(r"^ret (?P<v>{o})$".format(o=_OPERAND)),
        lambda m: Ret(_operand(m["v"])),
    ),
    (re.compile(r"^ret$"), lambda m: Ret()),
    (
        re.compile(
            r"^(?:%(?P<d>{n}) = )?@(?P<f>{n})\((?P<args>.*?)\)(?: (?P<meta>\{{.*\}}))?$".format(
                n=_NAME
            )
        ),
        lambda m: Intrinsic(
            m["f"],
            _operand_list(m["args"]),
            m["d"],
            eval(m["meta"], {"__builtins__": {}}) if m["meta"] else {},  # noqa: S307
        ),
    ),
    (
        re.compile(
            r"^%(?P<d>{n}) = (?P<a>{o}) (?P<op>\S+) (?P<b>{o})$".format(
                n=_NAME, o=_OPERAND
            )
        ),
        lambda m: BinOp(m["d"], m["op"], _operand(m["a"]), _operand(m["b"])),
    ),
    (
        re.compile(r"^%(?P<d>{n}) = (?P<s>{o})$".format(n=_NAME, o=_OPERAND)),
        lambda m: Move(m["d"], _operand(m["s"])),
    ),
]

_LINE_NO = re.compile(r"^\s*\d+:\s*")


def parse_instr(text):
    """Parse one instruction line (as produced by ``format_instr``)."""
    text = _LINE_NO.sub("", text.strip())
    if text.endswith(":") and re.match(r"^%s:$" % _NAME, text):
        return Label(text[:-1])
    for pattern, build in _PATTERNS:
        match = pattern.match(text)
        if match is not None:
            instr = build(match)
            if isinstance(instr, BinOp) and instr.op not in BINOPS:
                raise IRError("unknown operator in %r" % text)
            return instr
    raise IRError("cannot parse instruction %r" % text)


def _unescape(text):
    out = []
    i = 0
    escapes = {"n": "\n", "r": "\r", "t": "\t", '"': '"', "\\": "\\"}
    while i < len(text):
        ch = text[i]
        if ch == "\\" and i + 1 < len(text) and text[i + 1] in escapes:
            out.append(escapes[text[i + 1]])
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


_MODULE_RE = re.compile(r"^module (?P<name>\S+) \(entry=(?P<entry>\S+)\)$")
_STRUCT_RE = re.compile(r"^struct (?P<name>\S+) \{ (?P<fields>[^}]*) \}$")
_GLOBAL_STR_RE = re.compile(r'^global (?P<name>\S+) = "(?P<text>.*)"$')
_GLOBAL_RE = re.compile(
    r"^global (?P<name>\S+)\[(?P<size>\d+)\]"
    r"(?: = (?P<init>-?\d+(?:,-?\d+)*))?(?: struct=(?P<struct>\S+))?$"
)
_FUNC_RE = re.compile(
    r"^func (?P<name>\S+)\((?P<params>[^)]*)\) sig=(?P<sig>\S+)"
    r"(?P<wrapper> wrapper)? \{$"
)


def parse_module(text):
    """Parse a whole module from its textual form."""
    module = None
    current = None
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if module is None:
            match = _MODULE_RE.match(line)
            if not match:
                raise IRError("expected module header, got %r" % line)
            module = Module(match["name"], match["entry"])
            continue
        if current is None:
            match = _STRUCT_RE.match(line)
            if match:
                fields = tuple(
                    f.strip() for f in match["fields"].split(",") if f.strip()
                )
                module.types.define(StructType(match["name"], fields))
                continue
            match = _GLOBAL_STR_RE.match(line)
            if match:
                module.add_global(
                    GlobalVar(match["name"], init=_unescape(match["text"]))
                )
                continue
            match = _GLOBAL_RE.match(line)
            if match:
                init = None
                if match["init"]:
                    init = [int(v) for v in match["init"].split(",")]
                module.add_global(
                    GlobalVar(
                        match["name"],
                        size=int(match["size"]),
                        init=init,
                        struct=match["struct"],
                    )
                )
                continue
            match = _FUNC_RE.match(line)
            if match:
                params = [p.strip() for p in match["params"].split(",") if p.strip()]
                current = Function(match["name"], params, match["sig"])
                current.is_wrapper = bool(match["wrapper"])
                continue
            raise IRError("unexpected line at module scope: %r" % line)
        if line == "}":
            module.add_function(current)
            current = None
            continue
        current.append(parse_instr(line))
    if current is not None:
        raise IRError("unterminated function %r" % current.name)
    if module is None:
        raise IRError("empty module text")
    return module
