"""Whole-module call graph used by the BASTION compiler and the baselines.

Captures exactly what §6.1/§6.2 need:

- direct call edges with their callsite positions,
- indirect callsites (position + type signature),
- the address-taken set (functions that may be indirect-call targets),
- syscall sites (both raw ``Syscall`` instructions and, transitively,
  callers of wrapper functions).
"""

from dataclasses import dataclass, field

from repro.ir.instructions import Call, CallIndirect, FuncAddr, Syscall


@dataclass(frozen=True)
class CallSite:
    """A call instruction's position: (caller function, body index)."""

    caller: str
    index: int


@dataclass
class CallGraph:
    """Static call information for one module."""

    module: object
    direct_edges: dict = field(default_factory=dict)  # callee -> [CallSite]
    callee_of: dict = field(default_factory=dict)  # CallSite -> callee name
    indirect_sites: list = field(default_factory=list)  # [CallSite]
    indirect_sigs: dict = field(default_factory=dict)  # CallSite -> sig
    address_taken: set = field(default_factory=set)  # function names
    syscall_sites: dict = field(default_factory=dict)  # name -> [CallSite]

    def callers_of(self, func_name):
        """Direct callsites targeting ``func_name``."""
        return tuple(self.direct_edges.get(func_name, ()))

    def direct_callees(self, func_name):
        """Function names directly called from ``func_name``."""
        out = []
        for callee, sites in self.direct_edges.items():
            if any(site.caller == func_name for site in sites):
                out.append(callee)
        return out

    def functions_containing_syscall(self, syscall_name):
        """Functions with a raw ``Syscall`` instruction for ``syscall_name``."""
        return tuple(
            site.caller for site in self.syscall_sites.get(syscall_name, ())
        )

    def is_address_taken(self, func_name):
        return func_name in self.address_taken

    def reachable_from(self, roots):
        """Functions reachable via direct edges + address-taken closure.

        Used by the debloating baseline: anything reachable directly from the
        roots, plus every address-taken function (it may be reached via any
        indirect callsite).
        """
        seen = set()
        stack = list(roots) + sorted(self.address_taken)
        while stack:
            name = stack.pop()
            if name in seen or name not in self.module.functions:
                continue
            seen.add(name)
            stack.extend(self.direct_callees(name))
        return seen


def build_callgraph(module):
    """Scan every instruction of ``module`` and build its :class:`CallGraph`."""
    graph = CallGraph(module)
    for func in module.functions.values():
        for idx, instr in enumerate(func.body):
            site = CallSite(func.name, idx)
            if isinstance(instr, Call):
                graph.direct_edges.setdefault(instr.callee, []).append(site)
                graph.callee_of[site] = instr.callee
            elif isinstance(instr, CallIndirect):
                graph.indirect_sites.append(site)
                sig = instr.sig or ("fn%d" % len(instr.args))
                graph.indirect_sigs[site] = sig
            elif isinstance(instr, FuncAddr):
                graph.address_taken.add(instr.func)
            elif isinstance(instr, Syscall):
                graph.syscall_sites.setdefault(instr.name, []).append(site)
    return graph
