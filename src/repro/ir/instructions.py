"""IR instruction set.

Every instruction is a small dataclass.  Two generic accessors drive all
compiler analyses:

- :meth:`Instr.uses` — the operands the instruction reads;
- :meth:`Instr.defs` — the local variable names it writes.

Operands are :class:`Var` (a named local) or :class:`Imm` (an integer
immediate).  Labels are plain strings resolved per-function.
"""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Var:
    """A named local variable (memory-backed in the VM frame)."""

    name: str

    def __repr__(self):
        return "%%%s" % self.name


@dataclass(frozen=True)
class Imm:
    """An integer immediate."""

    value: int

    def __repr__(self):
        return "$%d" % self.value


#: Union alias used in signatures/docs.
Operand = (Var, Imm)


def as_operand(value):
    """Coerce ``value`` into an operand.

    ints become :class:`Imm`; strings become :class:`Var`; operands pass
    through unchanged.
    """
    if isinstance(value, (Var, Imm)):
        return value
    if isinstance(value, bool):
        return Imm(int(value))
    if isinstance(value, int):
        return Imm(value)
    if isinstance(value, str):
        return Var(value)
    raise TypeError("cannot use %r as an IR operand" % (value,))


class Instr:
    """Base class for all IR instructions."""

    #: set on subclasses that transfer control
    is_terminator = False

    def uses(self):
        """Operands read by this instruction."""
        return ()

    def defs(self):
        """Local variable names written by this instruction."""
        return ()


@dataclass
class Const(Instr):
    """``dst = value``"""

    dst: str
    value: int

    def defs(self):
        return (self.dst,)


@dataclass
class Move(Instr):
    """``dst = src``"""

    dst: str
    src: object

    def uses(self):
        return (self.src,)

    def defs(self):
        return (self.dst,)


#: Binary operators understood by the interpreter.
BINOPS = (
    "+",
    "-",
    "*",
    "//",
    "%",
    "&",
    "|",
    "^",
    "<<",
    ">>",
    "==",
    "!=",
    "<",
    "<=",
    ">",
    ">=",
)


@dataclass
class BinOp(Instr):
    """``dst = a <op> b`` — comparisons yield 0/1."""

    dst: str
    op: str
    a: object
    b: object

    def uses(self):
        return (self.a, self.b)

    def defs(self):
        return (self.dst,)


@dataclass
class Load(Instr):
    """``dst = memory[addr]``"""

    dst: str
    addr: object

    def uses(self):
        return (self.addr,)

    def defs(self):
        return (self.dst,)


@dataclass
class Store(Instr):
    """``memory[addr] = value``"""

    addr: object
    value: object

    def uses(self):
        return (self.addr, self.value)


@dataclass
class AddrLocal(Instr):
    """``dst = &local`` — frame address of a local variable."""

    dst: str
    var: str

    def defs(self):
        return (self.dst,)


@dataclass
class AddrGlobal(Instr):
    """``dst = &global`` — data-segment address of a global."""

    dst: str
    name: str

    def defs(self):
        return (self.dst,)


@dataclass
class Gep(Instr):
    """``dst = base + offsetof(struct, field)`` — field address."""

    dst: str
    base: object
    struct: str
    field_name: str

    def uses(self):
        return (self.base,)

    def defs(self):
        return (self.dst,)


@dataclass
class Index(Instr):
    """``dst = base + index * scale`` — array element address."""

    dst: str
    base: object
    index: object
    scale: int = 1

    def uses(self):
        return (self.base, self.index)

    def defs(self):
        return (self.dst,)


@dataclass
class Call(Instr):
    """Direct call: ``dst = callee(args...)``."""

    dst: str  # may be None for void calls
    callee: str
    args: list = field(default_factory=list)

    def uses(self):
        return tuple(self.args)

    def defs(self):
        return (self.dst,) if self.dst is not None else ()


@dataclass
class CallIndirect(Instr):
    """Indirect call through a function pointer: ``dst = (*target)(args)``.

    ``sig`` is the callsite's type signature used by the LLVM-CFI baseline to
    build equivalence classes (function arity by default, override to model
    richer C types — or C++ vtable slots for the COOP scenario).
    """

    dst: str
    target: object
    args: list = field(default_factory=list)
    sig: str = None

    def uses(self):
        return (self.target,) + tuple(self.args)

    def defs(self):
        return (self.dst,) if self.dst is not None else ()


@dataclass
class Syscall(Instr):
    """Invoke system call ``name`` with ``args`` (rdi..r9 order).

    In well-formed programs these appear only inside libc wrapper functions;
    the BASTION compiler treats both wrappers and raw sites uniformly.
    """

    dst: str
    name: str
    args: list = field(default_factory=list)

    def uses(self):
        return tuple(self.args)

    def defs(self):
        return (self.dst,) if self.dst is not None else ()


@dataclass
class FuncAddr(Instr):
    """``dst = &function`` — taking a function's address.

    Marks the target as address-taken: it may become the target of an
    indirect call (and, for syscall wrappers, classifies the syscall as
    indirectly-callable in §3.1's sense).
    """

    dst: str
    func: str

    def defs(self):
        return (self.dst,)


@dataclass
class Label(Instr):
    """A branch target."""

    name: str


@dataclass
class Jump(Instr):
    """Unconditional jump."""

    is_terminator = True
    label: str


@dataclass
class Branch(Instr):
    """Conditional jump: nonzero ``cond`` goes to ``then_label``."""

    is_terminator = True
    cond: object
    then_label: str
    else_label: str

    def uses(self):
        return (self.cond,)


@dataclass
class Ret(Instr):
    """Return, optionally with a value."""

    is_terminator = True
    value: object = None

    def uses(self):
        return (self.value,) if self.value is not None else ()


#: Intrinsic names installed by the BASTION instrumenter (Table 2).
CTX_WRITE_MEM = "ctx_write_mem"
CTX_BIND_MEM = "ctx_bind_mem"
CTX_BIND_CONST = "ctx_bind_const"

#: Other intrinsics available to applications and the test harness.
HARNESS_INTRINSICS = ("trace", "halt", "hook", "cycle_burn")


@dataclass
class Intrinsic(Instr):
    """A runtime-library or harness hook executed by the VM.

    BASTION instrumentation (``ctx_write_mem``, ``ctx_bind_mem``,
    ``ctx_bind_const``) and harness hooks (``hook`` — attack trigger points,
    ``trace`` — debug prints, ``cycle_burn`` — explicit cost modelling of
    elided computation) are all Intrinsics.  ``meta`` carries static
    information set by the instrumenter (argument position, target callsite
    index, slot count).
    """

    name: str
    args: list = field(default_factory=list)
    dst: str = None
    meta: dict = field(default_factory=dict)

    def uses(self):
        return tuple(self.args)

    def defs(self):
        return (self.dst,) if self.dst is not None else ()
