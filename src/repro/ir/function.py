"""IR function container: parameters, body, labels, and local discovery."""

from repro.errors import IRError
from repro.ir.instructions import AddrLocal, Label, Var


class Function:
    """A function: named parameters plus a flat instruction list.

    Locals are implicit — any variable defined by an instruction or whose
    address is taken via :class:`AddrLocal` becomes a frame slot.  Frame
    layout order is: parameters first, then other locals in order of first
    appearance.  This deterministic layout is what lets attack scripts (and
    the monitor) compute variable addresses.

    Attributes:
        name: function symbol.
        params: parameter names, in call order.
        body: list of :class:`repro.ir.instructions.Instr`.
        sig: type-signature string for the LLVM-CFI baseline's equivalence
            classes.  Defaults to ``fn<arity>``; set explicitly to model
            richer C/C++ types.
    """

    def __init__(self, name, params=None, sig=None):
        self.name = name
        self.params = list(params or [])
        if len(set(self.params)) != len(self.params):
            raise IRError("duplicate parameter in function %r" % name)
        self.body = []
        self.sig = sig or ("fn%d" % len(self.params))
        #: True for libc-style syscall wrappers (one Syscall + Ret); the
        #: BASTION compiler treats calls *to* wrappers as the syscall
        #: callsites and does not instrument wrapper bodies themselves.
        self.is_wrapper = False
        #: bumped on every structural change; the VM's predecode cache keys
        #: on it so externally mutated bodies are re-decoded
        self.version = 0
        self._labels = None
        self._locals = None
        self._slots = None

    # -- structure -----------------------------------------------------

    def append(self, instr):
        """Append an instruction, invalidating cached layout info."""
        self.body.append(instr)
        self.version += 1
        self._labels = None
        self._locals = None
        self._slots = None
        return instr

    def invalidate(self):
        """Drop caches after external body mutation (e.g. instrumentation)."""
        self.version += 1
        self._labels = None
        self._locals = None
        self._slots = None

    @property
    def labels(self):
        """Map of label name -> instruction index."""
        if self._labels is None:
            labels = {}
            for idx, instr in enumerate(self.body):
                if isinstance(instr, Label):
                    if instr.name in labels:
                        raise IRError(
                            "duplicate label %r in %s" % (instr.name, self.name)
                        )
                    labels[instr.name] = idx
            self._labels = labels
        return self._labels

    def label_index(self, name):
        """Instruction index of label ``name``."""
        try:
            return self.labels[name]
        except KeyError:
            raise IRError("unknown label %r in %s" % (name, self.name)) from None

    # -- locals ---------------------------------------------------------

    def local_names(self):
        """All frame slots: params first, then locals by first appearance."""
        if self._locals is None:
            seen = list(self.params)
            seen_set = set(seen)

            def note(name):
                if name not in seen_set:
                    seen_set.add(name)
                    seen.append(name)

            for instr in self.body:
                for name in instr.defs():
                    note(name)
                if isinstance(instr, AddrLocal):
                    note(instr.var)
                for op in instr.uses():
                    if isinstance(op, Var):
                        note(op.name)
            self._locals = seen
        return self._locals

    def local_slot(self, name):
        """Frame slot index of local ``name`` (0-based)."""
        slots = self._slots
        if slots is None:
            slots = self._slots = {
                n: i for i, n in enumerate(self.local_names())
            }
        try:
            return slots[name]
        except KeyError:
            raise IRError("unknown local %r in %s" % (name, self.name)) from None

    @property
    def frame_size(self):
        """Number of local slots this function's frame needs."""
        return len(self.local_names())

    def __repr__(self):
        return "<Function %s(%s) %d instrs>" % (
            self.name,
            ", ".join(self.params),
            len(self.body),
        )
