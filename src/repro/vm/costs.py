"""The deterministic cycle cost model.

Every performance figure in the reproduction is derived from this model.
Absolute values are synthetic; the *ratios* encode the mechanisms the paper
measures:

- instrumentation (``ctx_write_mem``/``ctx_bind_*``) is a handful of inlined
  instructions — cheap (§8: "all library functions are inlined");
- a seccomp filter evaluation is a few dozen BPF instructions per syscall —
  cheap (Table 7 row 1: < 0.29%);
- a ``SECCOMP_RET_TRACE`` stop costs two context switches plus however many
  ``ptrace``/``process_vm_readv`` round trips the monitor issues — expensive
  (Table 7 rows 2–3: fetching process state dominates, up to 95.7%);
- CET shadow-stack maintenance is hardware-speed — near free (Fig. 3);
- LLVM-CFI adds a check at *every* indirect call — small but app-wide.

The per-category ledger lets benches report where cycles went, reproducing
the paper's Table 7 breakdown methodology.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Cycle costs charged by the VM, kernel, runtime, and monitor."""

    # -- plain execution -------------------------------------------------
    instr: int = 1  # generic ALU / move / addressing instruction
    load: int = 2
    store: int = 2
    call: int = 4  # push ret+fp, jump
    ret: int = 4
    branch: int = 1

    # -- kernel ------------------------------------------------------------
    syscall_base: int = 220  # user->kernel->user transition
    syscall_per_byte: int = 0  # extra I/O cost charged per byte moved, x1000
    io_per_byte_millicycles: int = 350  # 0.35 cycles per byte copied
    net_per_byte_millicycles: int = 500  # network stack per-byte handling

    # -- defenses ----------------------------------------------------------
    cet_per_transfer: int = 1  # shadow-stack push/pop (hardware)
    llvm_cfi_check: int = 15  # per indirect callsite (jump-table + range check)
    dfi_per_access: int = 7  # per load/store (DFI baseline)
    #: DFI tax on modelled (burned) computation, in millicycles per burned
    #: cycle: ~30% of instructions are memory accesses, each paying the
    #: per-access check — the app-wide cost §2.2 contrasts with BASTION
    dfi_elided_millis: int = 900
    #: per BPF instruction evaluated, in millicycles (the kernel JITs
    #: filters, so effective per-instruction cost is well under a cycle)
    seccomp_per_bpf_instr_millicycles: int = 300
    #: seccomp action-cache hit (Linux's per-syscall-nr bitmap: a mask test
    #: instead of running the BPF engine)
    seccomp_cache_hit: int = 1
    #: SFIP transition check: one in-kernel state-table probe per syscall
    #: (prev-state row lookup + membership test, SFIP §5)
    sfip_check: int = 3
    #: the sfip_origin variant additionally resolves the issuing function
    #: from the trapped rip and probes the origin set
    sfip_origin_check: int = 5

    #: per ready event harvested by ``epoll_wait`` (copy one epoll_event
    #: to userspace plus ready-list bookkeeping)
    epoll_per_event: int = 6

    # -- instrumentation (inlined BASTION runtime library) -----------------
    ctx_write_mem_base: int = 9
    ctx_write_mem_per_slot: int = 2
    ctx_bind: int = 7

    # -- monitor / ptrace ---------------------------------------------------
    context_switch: int = 2400  # one direction of a trap stop
    ptrace_getregs: int = 1500
    ptrace_peek: int = 600  # one-word PTRACE_PEEKDATA
    readv_base: int = 1900  # process_vm_readv setup
    readv_per_word: int = 2
    monitor_check: int = 25  # metadata lookup / compare in the monitor
    inkernel_state_access: int = 40  # ablation: monitor inside the kernel
    #: hash + probe of the monitor's verdict cache, charged per lookup
    verdict_cache_lookup: int = 30
    #: a fast-path stop resumes the tracee without a full scheduler round
    #: trip: the trap's two context switches are amortized over this many
    #: stops (the batched-continuation accounting of Table 3/4)
    trace_stop_batch: int = 8


#: The calibrated model used by all benchmarks.
DEFAULT_COSTS = CostModel()


class CycleLedger:
    """Accumulates cycles with a per-category breakdown.

    Categories used across the stack: ``app``, ``kernel``, ``seccomp``,
    ``trap``, ``ptrace``, ``monitor``, ``instrumentation``, ``cet``,
    ``cfi``, ``dfi``.
    """

    def __init__(self):
        self.cycles = 0
        self.by_category = {}

    def charge(self, amount, category="app"):
        if amount < 0:
            raise ValueError("negative cycle charge")
        self.cycles += amount
        self.by_category[category] = self.by_category.get(category, 0) + amount

    def category(self, name):
        return self.by_category.get(name, 0)

    def overhead_vs(self, baseline_cycles):
        """Percent overhead of this ledger against a baseline cycle count."""
        if baseline_cycles <= 0:
            raise ValueError("baseline must be positive")
        return 100.0 * (self.cycles - baseline_cycles) / baseline_cycles

    def breakdown(self):
        """Sorted (category, cycles, percent) rows for reports."""
        total = max(self.cycles, 1)
        rows = [
            (name, cycles, 100.0 * cycles / total)
            for name, cycles in sorted(
                self.by_category.items(), key=lambda kv: -kv[1]
            )
        ]
        return rows

    def __repr__(self):
        return "<CycleLedger %d cycles>" % self.cycles
