"""CET-style hardware shadow stack (§8, -fcf-protection=full).

A secondary stack the application cannot address: pushes on every call, pops
and compares on every return, raising a control-protection fault on
mismatch.  Its storage is a Python list — deliberately *outside* the
simulated memory, mirroring the hardware property that no memory write in
the protected program can reach it.
"""

from repro.errors import ShadowStackFault


class ShadowStack:
    """The secondary return-address stack maintained by the 'CPU'."""

    def __init__(self):
        self._stack = []
        self.violations = 0

    def push(self, return_address):
        self._stack.append(return_address)

    def check_pop(self, return_address):
        """Pop and compare; raise :class:`ShadowStackFault` on mismatch."""
        if not self._stack:
            self.violations += 1
            raise ShadowStackFault(
                "return with empty shadow stack (ret to %#x)" % return_address
            )
        expected = self._stack.pop()
        if expected != return_address:
            self.violations += 1
            raise ShadowStackFault(
                "shadow stack mismatch: ret to %#x, expected %#x"
                % (return_address, expected)
            )

    @property
    def depth(self):
        return len(self._stack)
