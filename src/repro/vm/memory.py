"""Sparse, word-granular simulated memory.

One addressable slot per 8-byte-aligned address; each slot holds one Python
int.  Strings are stored C-style, one character code per slot with a NUL
terminator (see DESIGN.md §6).  Reads of unmapped slots return 0 — the
region/permission machinery lives in the kernel's mm, while this class is
the raw backing store both the application *and* the attacker touch.
"""

from repro.errors import SegmentationFault

#: Bytes per slot (addresses step by this much between adjacent slots).
WORD = 8


class Memory:
    """Word-granular sparse memory."""

    def __init__(self):
        self._words = {}

    def read(self, addr):
        """Read the slot at ``addr`` (0 if never written)."""
        # Fast path: a well-formed address needs no isinstance checks.
        # ``True`` (a bool) fails the alignment test and falls through to
        # ``_check``, which reproduces the exact fault for every bad input.
        if type(addr) is int and addr >= 0 and not addr & 7:
            return self._words.get(addr, 0)
        self._check(addr)
        return self._words.get(addr, 0)

    def write(self, addr, value):
        """Write one slot."""
        if type(addr) is int and addr >= 0 and not addr & 7:
            if not isinstance(value, int):
                raise TypeError("memory stores ints, got %r" % (value,))
            self._words[addr] = value
            return
        self._check(addr)
        if not isinstance(value, int):
            raise TypeError("memory stores ints, got %r" % (value,))
        self._words[addr] = value

    def _check(self, addr):
        if not isinstance(addr, int):
            raise SegmentationFault("non-integer address %r" % (addr,))
        if addr < 0:
            raise SegmentationFault("negative address %#x" % addr)
        if addr % WORD:
            raise SegmentationFault("unaligned access at %#x" % addr)

    # -- bulk helpers ----------------------------------------------------

    def read_block(self, addr, nwords):
        """Read ``nwords`` consecutive slots."""
        return [self.read(addr + i * WORD) for i in range(nwords)]

    def write_block(self, addr, words):
        """Write consecutive slots from an iterable of ints."""
        for i, value in enumerate(words):
            self.write(addr + i * WORD, value)

    def read_cstr(self, addr, max_slots=4096):
        """Read a NUL-terminated string starting at ``addr``."""
        chars = []
        for i in range(max_slots):
            word = self.read(addr + i * WORD)
            if word == 0:
                return "".join(chars)
            chars.append(chr(word & 0x10FFFF))
        return "".join(chars)

    def write_cstr(self, addr, text):
        """Write ``text`` as a NUL-terminated string; returns slots used."""
        for i, ch in enumerate(text):
            self.write(addr + i * WORD, ord(ch))
        self.write(addr + len(text) * WORD, 0)
        return len(text) + 1

    def read_vector(self, addr, max_entries=64):
        """Read a NULL-terminated pointer vector (argv/envp style)."""
        out = []
        for i in range(max_entries):
            word = self.read(addr + i * WORD)
            if word == 0:
                break
            out.append(word)
        return out

    def snapshot_region(self, addr, nwords):
        """Copy of a region as a tuple (for tests and attack staging)."""
        return tuple(self.read_block(addr, nwords))

    def mapped_count(self):
        """How many slots have ever been written (diagnostics)."""
        return len(self._words)
