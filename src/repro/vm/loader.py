"""Lays a validated IR module out into an executable image.

Address-space layout (see DESIGN.md §6)::

    0x0000_0040_0000  text      (instruction i of a function: base + 4*i)
    0x0000_0060_0000  data      (globals; strings one char per slot)
    0x0000_1000_0000  heap      (brk / malloc bump region)
    0x00007e00_00000000  BASTION shadow memory (mapped by the monitor)
    0x00007f00_00000000  mmap region
    0x00007ffd_00000000  stack top (grows down)

The image resolves code addresses back to ``(function, instruction index)``
so the CPU, the monitor (decoding call kinds at unwound return addresses),
and the attack scripts all share one source of truth for symbols.
"""

import bisect

from repro.errors import ExecutionFault, LoaderError
from repro.ir.instructions import Call, CallIndirect
from repro.ir.validate import validate_module
from repro.vm.memory import WORD

TEXT_BASE = 0x0040_0000
DATA_BASE = 0x0060_0000
HEAP_BASE = 0x1000_0000
SHADOW_BASE = 0x7E00_0000_0000
MMAP_BASE = 0x7F00_0000_0000
STACK_TOP = 0x7FFD_0000_0000

#: Code addresses advance by 4 per instruction (x86-ish flavour only).
INSTR_STRIDE = 4
_FUNC_ALIGN = 0x100


class Image:
    """A loaded program: code addresses, data addresses, symbol lookup."""

    def __init__(self, module):
        validate_module(module)
        self.module = module
        self.func_base = {}
        self.global_addr = {}
        self._bases = []  # sorted (base, name) for address resolution

        addr = TEXT_BASE
        for func in module.functions.values():
            self.func_base[func.name] = addr
            self._bases.append((addr, func.name))
            span = max(len(func.body), 1) * INSTR_STRIDE
            addr += ((span + _FUNC_ALIGN - 1) // _FUNC_ALIGN) * _FUNC_ALIGN
        self.text_end = addr

        daddr = DATA_BASE
        for gvar in module.globals.values():
            self.global_addr[gvar.name] = daddr
            daddr += gvar.size * WORD
        self.data_end = daddr

        if self.text_end > DATA_BASE:
            raise LoaderError("text segment overflows into data segment")

        self.entry_addr = self.func_base[module.entry]
        self._base_keys = [b for b, _ in self._bases]

    # -- code resolution ---------------------------------------------------

    def func_containing(self, addr):
        """Name of the function whose range covers ``addr`` (or None)."""
        if not (TEXT_BASE <= addr < self.text_end):
            return None
        pos = bisect.bisect_right(self._base_keys, addr) - 1
        if pos < 0:
            return None
        base, name = self._bases[pos]
        func = self.module.functions[name]
        if addr < base + len(func.body) * INSTR_STRIDE:
            return name
        return None

    def resolve_code(self, addr):
        """Map a code address to ``(function, instruction index)``.

        Raises:
            ExecutionFault: if ``addr`` is not a valid instruction address —
                the DEP/NX behaviour attacks run into when jumping to data.
        """
        name = self.func_containing(addr)
        if name is None:
            raise ExecutionFault("instruction fetch from %#x" % addr, rip=addr)
        base = self.func_base[name]
        offset = addr - base
        if offset % INSTR_STRIDE:
            raise ExecutionFault("misaligned fetch at %#x" % addr, rip=addr)
        return self.module.functions[name], offset // INSTR_STRIDE

    def instruction_at(self, addr):
        func, idx = self.resolve_code(addr)
        return func.body[idx]

    def addr_of(self, func_name, index=0):
        """Code address of instruction ``index`` of ``func_name``."""
        return self.func_base[func_name] + index * INSTR_STRIDE

    def call_kind_at(self, addr):
        """Classify the instruction at ``addr``: 'direct', 'indirect', None.

        The monitor uses this to decode the call instruction sitting at
        ``return_address - 4`` while enforcing the call-type context (§7.2).
        """
        try:
            instr = self.instruction_at(addr)
        except ExecutionFault:
            return None
        if isinstance(instr, Call):
            return "direct"
        if isinstance(instr, CallIndirect):
            return "indirect"
        return None

    def describe(self, addr):
        """Human-readable ``func+0xoff`` form of a code address."""
        name = self.func_containing(addr)
        if name is None:
            return "%#x" % addr
        return "%s+%#x" % (name, addr - self.func_base[name])

    # -- data ----------------------------------------------------------------

    def write_globals(self, memory):
        """Materialize global initializers into ``memory``."""
        for gvar in self.module.globals.values():
            memory.write_block(self.global_addr[gvar.name], gvar.initial_words())


def load_module(module, memory=None):
    """Validate + lay out ``module``; optionally write globals to memory."""
    image = Image(module)
    if memory is not None:
        image.write_globals(memory)
    return image
