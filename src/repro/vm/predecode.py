"""Predecoded instruction handlers — the interpreter's wall-clock fast path.

The classic interpreter loop (`CPU._step`) re-derives everything on every
step: it resolves ``rip`` through a bisect, walks an ``isinstance`` chain,
and turns every operand into a frame address via an O(n) slot scan.  None
of that work depends on anything that changes at runtime, so this module
does it once per (CPU, function): each instruction becomes a zero-argument
closure with its frame-slot offsets, immediate values, jump targets, and
cycle charges already baked in.

Strict contract: **simulated-cycle semantics are identical to the classic
loop** — the same ledger charges in the same categories at the same points,
the same faults (with the same messages) from the same operand order, the
same stats counters.  The parity fixture (`tests/fixtures/parity_seed.json`)
pins this byte-for-byte; `tests/vm/test_predecode.py` additionally diffs the
two loops directly.  Anything an instruction does that cannot be proven
safe to specialize at decode time falls back to ``cpu._step(instr)``, which
preserves error timing exactly (a malformed instruction that is never
executed must never raise).

Closures bind objects, not values, for anything mutable: ``cpu.fp``,
``cpu.rip``, ``proc.bastion_runtime`` and the hooks dict are read at
execution time, so attacks that corrupt frames or install hooks mid-run
behave exactly as before.
"""

from repro.ir.instructions import (
    AddrGlobal,
    AddrLocal,
    BinOp,
    Branch,
    Call,
    Const,
    CTX_BIND_CONST,
    CTX_BIND_MEM,
    CTX_WRITE_MEM,
    FuncAddr,
    Gep,
    Imm,
    Index,
    Intrinsic,
    Jump,
    Label,
    Load,
    Move,
    Ret,
    Store,
    Syscall,
    Var,
)
from repro.vm.loader import INSTR_STRIDE
from repro.vm.memory import WORD

_M64 = (1 << 64) - 1
_HALF = 1 << 63
_FULL = 1 << 64

#: Exact replicas of the classic loop's ``_binop`` arms (including the
#: C-style division semantics and the bug-compatible float round-trip).
_BINOPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "//": lambda a, b: 0 if b == 0 else int(a / b) if (a < 0) != (b < 0) else a // b,
    "%": lambda a, b: 0
    if b == 0
    else a - b * (int(a / b) if (a < 0) != (b < 0) else a // b),
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "<<": lambda a, b: a << (b & 63),
    ">>": lambda a, b: a >> (b & 63),
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
    "<": lambda a, b: int(a < b),
    "<=": lambda a, b: int(a <= b),
    ">": lambda a, b: int(a > b),
    ">=": lambda a, b: int(a >= b),
}


class _Unsupported(Exception):
    """Internal decode-time signal: use the classic-step fallback."""


def decode_function(cpu, func):
    """Decode ``func`` into a list of zero-argument ops for ``cpu``.

    One op per instruction, parallel to ``func.body``.  Each op returns
    ``None`` to continue or an :class:`~repro.vm.cpu.ExitStatus` to stop,
    exactly like ``CPU._step``.
    """
    image = cpu.image
    mem = cpu.proc.memory
    words = mem._words
    mem_read = mem.read
    mem_write = mem.write
    ledger = cpu.ledger
    bc = ledger.by_category
    stats = cpu.stats
    costs = cpu.costs
    proc = cpu.proc
    shadow = cpu.shadow_stack
    dfi = cpu.options.dfi

    c_instr = costs.instr
    c_load = costs.load
    c_store = costs.store
    c_branch = costs.branch
    c_call = costs.call
    c_ret = costs.ret
    c_cet = costs.cet_per_transfer
    c_dfi = costs.dfi_per_access

    offs = {
        name: WORD * (slot + 1) for slot, name in enumerate(func.local_names())
    }

    def spec(operand):
        """Operand -> (is_imm, immediate value | frame offset)."""
        if isinstance(operand, Imm):
            return True, operand.value
        if isinstance(operand, Var):
            return False, offs[operand.name]
        raise _Unsupported(operand)

    def reader(operand):
        """Generic fetch closure for the less-hot ops."""
        imm, v = spec(operand)
        if imm:
            return lambda: v
        off = v

        def rd():
            addr = cpu.fp - off
            if addr >= 0 and not addr & 7:
                return words.get(addr, 0)
            return mem_read(addr)

        return rd

    def store_local(off):
        """Write a (wrapped) value into the current frame's slot."""

        def wr(value):
            addr = cpu.fp - off
            if addr >= 0 and not addr & 7:
                words[addr] = value
            else:
                mem_write(addr, value)

        return wr

    # -- per-instruction factories ------------------------------------------

    def make_const(instr):
        if not isinstance(instr.value, int):
            raise _Unsupported(instr)
        value = instr.value & _M64
        if value >= _HALF:
            value -= _FULL
        doff = offs[instr.dst]

        def op():
            addr = cpu.fp - doff
            if addr >= 0 and not addr & 7:
                words[addr] = value
            else:
                mem_write(addr, value)
            ledger.cycles += c_instr
            bc["app"] = bc.get("app", 0) + c_instr
            cpu.rip += INSTR_STRIDE
            return None

        return op

    def make_move(instr):
        s_imm, sv = spec(instr.src)
        doff = offs[instr.dst]

        def op():
            fp = cpu.fp
            if s_imm:
                v = sv
            else:
                addr = fp - sv
                if addr >= 0 and not addr & 7:
                    v = words.get(addr, 0)
                else:
                    v = mem_read(addr)
            v &= _M64
            if v >= _HALF:
                v -= _FULL
            daddr = fp - doff
            if daddr >= 0 and not daddr & 7:
                words[daddr] = v
            else:
                mem_write(daddr, v)
            ledger.cycles += c_instr
            bc["app"] = bc.get("app", 0) + c_instr
            cpu.rip += INSTR_STRIDE
            return None

        return op

    def make_binop(instr):
        fn = _BINOPS.get(instr.op)
        if fn is None:
            raise _Unsupported(instr)
        a_imm, av = spec(instr.a)
        b_imm, bv = spec(instr.b)
        doff = offs[instr.dst]

        def op():
            fp = cpu.fp
            if a_imm:
                a = av
            else:
                addr = fp - av
                if addr >= 0 and not addr & 7:
                    a = words.get(addr, 0)
                else:
                    a = mem_read(addr)
            if b_imm:
                b = bv
            else:
                addr = fp - bv
                if addr >= 0 and not addr & 7:
                    b = words.get(addr, 0)
                else:
                    b = mem_read(addr)
            v = fn(a, b)
            v &= _M64
            if v >= _HALF:
                v -= _FULL
            daddr = fp - doff
            if daddr >= 0 and not daddr & 7:
                words[daddr] = v
            else:
                mem_write(daddr, v)
            ledger.cycles += c_instr
            bc["app"] = bc.get("app", 0) + c_instr
            cpu.rip += INSTR_STRIDE
            return None

        return op

    def make_load(instr):
        a_imm, av = spec(instr.addr)
        doff = offs[instr.dst]

        def op():
            fp = cpu.fp
            if a_imm:
                addr = av
            else:
                slot = fp - av
                if slot >= 0 and not slot & 7:
                    addr = words.get(slot, 0)
                else:
                    addr = mem_read(slot)
            if dfi:
                ledger.cycles += c_dfi
                bc["dfi"] = bc.get("dfi", 0) + c_dfi
            if addr >= 0 and not addr & 7:
                v = words.get(addr, 0)
            else:
                v = mem_read(addr)
            v &= _M64
            if v >= _HALF:
                v -= _FULL
            daddr = fp - doff
            if daddr >= 0 and not daddr & 7:
                words[daddr] = v
            else:
                mem_write(daddr, v)
            ledger.cycles += c_load
            bc["app"] = bc.get("app", 0) + c_load
            cpu.rip += INSTR_STRIDE
            return None

        return op

    def make_store(instr):
        a_imm, av = spec(instr.addr)
        v_imm, vv = spec(instr.value)

        def op():
            fp = cpu.fp
            if a_imm:
                addr = av
            else:
                slot = fp - av
                if slot >= 0 and not slot & 7:
                    addr = words.get(slot, 0)
                else:
                    addr = mem_read(slot)
            if dfi:
                ledger.cycles += c_dfi
                bc["dfi"] = bc.get("dfi", 0) + c_dfi
            if v_imm:
                v = vv
            else:
                slot = fp - vv
                if slot >= 0 and not slot & 7:
                    v = words.get(slot, 0)
                else:
                    v = mem_read(slot)
            v &= _M64
            if v >= _HALF:
                v -= _FULL
            if addr >= 0 and not addr & 7:
                words[addr] = v
            else:
                mem_write(addr, v)
            ledger.cycles += c_store
            bc["app"] = bc.get("app", 0) + c_store
            cpu.rip += INSTR_STRIDE
            return None

        return op

    def make_addr_local(instr):
        voff = offs[instr.var]
        doff = offs[instr.dst]

        def op():
            fp = cpu.fp
            v = (fp - voff) & _M64
            if v >= _HALF:
                v -= _FULL
            daddr = fp - doff
            if daddr >= 0 and not daddr & 7:
                words[daddr] = v
            else:
                mem_write(daddr, v)
            ledger.cycles += c_instr
            bc["app"] = bc.get("app", 0) + c_instr
            cpu.rip += INSTR_STRIDE
            return None

        return op

    def make_set_const(value, doff):
        """Shared tail for ops whose value is known at decode time."""
        value = value & _M64
        if value >= _HALF:
            value -= _FULL

        def op():
            addr = cpu.fp - doff
            if addr >= 0 and not addr & 7:
                words[addr] = value
            else:
                mem_write(addr, value)
            ledger.cycles += c_instr
            bc["app"] = bc.get("app", 0) + c_instr
            cpu.rip += INSTR_STRIDE
            return None

        return op

    def make_gep(instr):
        struct = image.module.types.get(instr.struct)
        delta = WORD * struct.offset(instr.field_name)  # may raise -> fallback
        rd = reader(instr.base)
        doff = offs[instr.dst]

        def op():
            v = (rd() + delta) & _M64
            if v >= _HALF:
                v -= _FULL
            daddr = cpu.fp - doff
            if daddr >= 0 and not daddr & 7:
                words[daddr] = v
            else:
                mem_write(daddr, v)
            ledger.cycles += c_instr
            bc["app"] = bc.get("app", 0) + c_instr
            cpu.rip += INSTR_STRIDE
            return None

        return op

    def make_index(instr):
        rd_base = reader(instr.base)
        rd_idx = reader(instr.index)
        scale = instr.scale
        doff = offs[instr.dst]

        def op():
            v = (rd_base() + WORD * rd_idx() * scale) & _M64
            if v >= _HALF:
                v -= _FULL
            daddr = cpu.fp - doff
            if daddr >= 0 and not daddr & 7:
                words[daddr] = v
            else:
                mem_write(daddr, v)
            ledger.cycles += c_instr
            bc["app"] = bc.get("app", 0) + c_instr
            cpu.rip += INSTR_STRIDE
            return None

        return op

    def make_label(_instr):
        def op():
            cpu.rip += INSTR_STRIDE
            return None

        return op

    def make_jump(instr):
        target = image.addr_of(func.name, func.label_index(instr.label))

        def op():
            cpu.rip = target
            ledger.cycles += c_branch
            bc["app"] = bc.get("app", 0) + c_branch
            return None

        return op

    def make_branch(instr):
        c_imm, cv = spec(instr.cond)
        t_then = image.addr_of(func.name, func.label_index(instr.then_label))
        t_else = image.addr_of(func.name, func.label_index(instr.else_label))

        def op():
            if c_imm:
                cond = cv
            else:
                addr = cpu.fp - cv
                if addr >= 0 and not addr & 7:
                    cond = words.get(addr, 0)
                else:
                    cond = mem_read(addr)
            cpu.rip = t_then if cond else t_else
            ledger.cycles += c_branch
            bc["app"] = bc.get("app", 0) + c_branch
            return None

        return op

    def make_call(instr):
        callee = image.module.functions.get(instr.callee)
        if callee is None or not callee.body:
            raise _Unsupported(instr)
        target_addr = image.func_base[instr.callee]
        readers = [reader(a) for a in instr.args]
        frame_bytes = WORD * callee.frame_size
        nparams = min(len(instr.args), len(callee.params))

        def op():
            return_addr = cpu.rip + INSTR_STRIDE
            args = [rd() for rd in readers]
            cpu.sp = sp = cpu.sp - 2 * WORD
            addr = sp + WORD
            if addr >= 0 and not addr & 7:
                words[addr] = return_addr
            else:
                mem_write(addr, return_addr)
            if sp >= 0 and not sp & 7:
                words[sp] = cpu.fp
            else:
                mem_write(sp, cpu.fp)
            cpu.fp = sp
            cpu.sp = sp - frame_bytes
            for i in range(nparams):
                v = args[i] & _M64
                if v >= _HALF:
                    v -= _FULL
                addr = sp - WORD * (i + 1)
                if addr >= 0 and not addr & 7:
                    words[addr] = v
                else:
                    mem_write(addr, v)
            if shadow is not None:
                shadow.push(return_addr)
                ledger.cycles += c_cet
                bc["cet"] = bc.get("cet", 0) + c_cet
            ledger.cycles += c_call
            bc["app"] = bc.get("app", 0) + c_call
            cpu.rip = target_addr
            stats.calls += 1
            return None

        return op

    def make_ret(instr):
        from repro.vm.cpu import ExitStatus

        rd = reader(instr.value) if instr.value is not None else None
        ret_sites = cpu._ret_sites

        def op():
            fp = cpu.fp
            if rd is None:
                value = 0
            else:
                value = rd() & _M64
                if value >= _HALF:
                    value -= _FULL
            addr = fp + WORD
            if addr >= 0 and not addr & 7:
                return_addr = words.get(addr, 0)
            else:
                return_addr = mem_read(addr)
            if fp >= 0 and not fp & 7:
                saved_fp = words.get(fp, 0)
            else:
                saved_fp = mem_read(fp)
            if shadow is not None:
                shadow.check_pop(return_addr)
                ledger.cycles += c_cet
                bc["cet"] = bc.get("cet", 0) + c_cet
            ledger.cycles += c_ret
            bc["app"] = bc.get("app", 0) + c_ret
            stats.rets += 1
            cpu.rax = value
            cpu.sp = fp + 2 * WORD
            cpu.fp = saved_fp
            if return_addr == 0:
                return ExitStatus("returned", value)
            if return_addr in ret_sites:
                dst_off = ret_sites[return_addr]
            else:
                dst_off = ret_sites[return_addr] = _ret_site(image, return_addr)
            if dst_off is not None:
                daddr = saved_fp - dst_off
                if daddr >= 0 and not daddr & 7:
                    words[daddr] = value
                else:
                    mem_write(daddr, value)
            cpu.rip = return_addr
            return None

        return op

    def make_syscall(instr):
        from repro.errors import WouldBlock

        readers = [reader(a) for a in instr.args]
        name = instr.name
        dst_off = offs[instr.dst] if instr.dst is not None else None
        dispatch = cpu.kernel.dispatch
        set_registers = proc.set_registers
        syscall_counts = stats.syscall_counts
        c_sys = costs.syscall_base

        def op():
            args = []
            for rd in readers:
                v = rd() & _M64
                if v >= _HALF:
                    v -= _FULL
                args.append(v)
            stats.syscalls += 1
            syscall_counts[name] = syscall_counts.get(name, 0) + 1
            set_registers(name, args, cpu.rip, cpu.fp, cpu.sp)
            ledger.cycles += c_sys
            bc["kernel"] = bc.get("kernel", 0) + c_sys
            try:
                result = dispatch(proc, name, args)
            except WouldBlock:
                stats.syscalls -= 1
                syscall_counts[name] -= 1
                raise
            if dst_off is not None:
                v = result & _M64
                if v >= _HALF:
                    v -= _FULL
                daddr = cpu.fp - dst_off
                if daddr >= 0 and not daddr & 7:
                    words[daddr] = v
                else:
                    mem_write(daddr, v)
            cpu.rip += INSTR_STRIDE
            return None

        return op

    def make_intrinsic(instr):
        name = instr.name
        if name == CTX_WRITE_MEM:
            rd_addr = reader(instr.args[0])
            rd_size = reader(instr.args[1]) if len(instr.args) > 1 else None
            base_cost = costs.ctx_write_mem_base
            per_slot = costs.ctx_write_mem_per_slot

            def op():
                stats.instrumentation_hits += 1
                runtime = proc.bastion_runtime
                addr = rd_addr()
                size = rd_size() if rd_size is not None else 1
                c = base_cost + per_slot * max(size, 1)
                if c < 0:
                    raise ValueError("negative cycle charge")
                ledger.cycles += c
                bc["instrumentation"] = bc.get("instrumentation", 0) + c
                if runtime is not None:
                    runtime.ctx_write_mem(addr, size)
                cpu.rip += INSTR_STRIDE
                return None

            return op
        if name in (CTX_BIND_MEM, CTX_BIND_CONST):
            rd = reader(instr.args[0])
            callsite = image.addr_of(func.name, instr.meta["callsite_index"])
            pos = instr.meta["pos"]
            bind_mem = name == CTX_BIND_MEM
            c_bind = costs.ctx_bind

            def op():
                stats.instrumentation_hits += 1
                runtime = proc.bastion_runtime
                value = rd()
                ledger.cycles += c_bind
                bc["instrumentation"] = bc.get("instrumentation", 0) + c_bind
                if runtime is not None:
                    if bind_mem:
                        runtime.ctx_bind_mem(callsite, pos, value)
                    else:
                        runtime.ctx_bind_const(callsite, pos, value)
                cpu.rip += INSTR_STRIDE
                return None

            return op
        if name == "cycle_burn":
            rd = reader(instr.args[0])
            dfi_millis = costs.dfi_elided_millis

            def op():
                amount = rd()
                if amount < 0:
                    raise ValueError("negative cycle charge")
                ledger.cycles += amount
                bc["app"] = bc.get("app", 0) + amount
                if dfi:
                    extra = amount * dfi_millis // 1000
                    ledger.cycles += extra
                    bc["dfi"] = bc.get("dfi", 0) + extra
                cpu.rip += INSTR_STRIDE
                return None

            return op
        if name == "trace":
            readers = [reader(a) for a in instr.args]

            def op():
                proc.trace_log.append([rd() for rd in readers])
                cpu.rip += INSTR_STRIDE
                return None

            return op
        if name == "hook":
            meta = instr.meta

            def op():
                hook = cpu.hooks.get(meta.get("point"))
                if hook is not None:
                    hook(cpu)
                cpu.rip += INSTR_STRIDE
                return None

            return op
        # 'halt' and unknown intrinsics take the classic path.
        raise _Unsupported(instr)

    factories = {
        Const: make_const,
        Move: make_move,
        BinOp: make_binop,
        Load: make_load,
        Store: make_store,
        AddrLocal: make_addr_local,
        Gep: make_gep,
        Index: make_index,
        Label: make_label,
        Jump: make_jump,
        Branch: make_branch,
        Call: make_call,
        Ret: make_ret,
        Syscall: make_syscall,
        Intrinsic: make_intrinsic,
    }

    def make_addr_global(instr):
        return make_set_const(image.global_addr[instr.name], offs[instr.dst])

    def make_func_addr(instr):
        return make_set_const(image.func_base[instr.func], offs[instr.dst])

    factories[AddrGlobal] = make_addr_global
    factories[FuncAddr] = make_func_addr

    def fallback(instr):
        def op():
            return cpu._step(instr)

        return op

    ops = []
    for instr in func.body:
        factory = factories.get(type(instr))
        if factory is None:
            ops.append(fallback(instr))
            continue
        try:
            ops.append(factory(instr))
        except Exception:
            # Anything not provably safe to specialize keeps the classic
            # step's exact error timing: raise at execution, not decode.
            ops.append(fallback(instr))
    return ops


def _ret_site(image, return_addr):
    """Frame offset of the caller's call destination slot (or None).

    Mirrors the delivery decode in ``CPU._do_ret``: the instruction at
    ``return_addr - 4`` must be a call with a destination variable.
    """
    from repro.errors import ExecutionFault
    from repro.ir.instructions import Call, CallIndirect

    call_addr = return_addr - INSTR_STRIDE
    try:
        caller_func, idx = image.resolve_code(call_addr)
        call_instr = caller_func.body[idx]
    except ExecutionFault:
        return None
    if isinstance(call_instr, (Call, CallIndirect)) and call_instr.dst is not None:
        return WORD * (caller_func.local_slot(call_instr.dst) + 1)
    return None
