"""The interpreter CPU and its supporting pieces.

- :mod:`repro.vm.memory` — sparse word-granular simulated memory;
- :mod:`repro.vm.costs` — the deterministic cycle cost model every
  performance experiment is built on;
- :mod:`repro.vm.loader` — lays a module out into a text/data image with
  real-looking addresses;
- :mod:`repro.vm.shadowstack` — CET-style hardware shadow stack;
- :mod:`repro.vm.cpu` — the CPU itself: frames live in simulated memory
  (saved frame pointer + return address words an attacker can overwrite),
  syscall arguments travel through registers, seccomp/ptrace hooks fire at
  syscall entry.
"""

from repro.vm.memory import Memory, WORD
from repro.vm.costs import CostModel, CycleLedger, DEFAULT_COSTS
from repro.vm.loader import Image, load_module
from repro.vm.shadowstack import ShadowStack
from repro.vm.cpu import CPU, CPUOptions, ExitStatus

__all__ = [
    "Memory",
    "WORD",
    "CostModel",
    "CycleLedger",
    "DEFAULT_COSTS",
    "Image",
    "load_module",
    "ShadowStack",
    "CPU",
    "CPUOptions",
    "ExitStatus",
]
