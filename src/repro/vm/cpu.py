"""The interpreter CPU.

Faithfulness properties that matter for the paper's experiments:

- **The memory stack is authoritative.**  ``call`` pushes the return address
  and the saved frame pointer into simulated memory; ``ret`` reads them back
  *from memory*.  Overwrite them (stack smash) and the CPU really returns to
  the attacker's address — ROP works, and CET really stops it.
- **Locals are memory-backed.**  Every variable occupies a frame slot at
  ``fp - 8*(slot+1)``; an arbitrary-write primitive can corrupt any argument
  before it reaches a syscall — which is what the argument-integrity context
  exists to catch.
- **Syscall arguments travel through registers.**  At a ``syscall``
  instruction the CPU materializes rax/rdi/.../r9/rip/rbp/rsp into the
  process's register file, then lets the kernel run seccomp and (possibly)
  stop the process for its tracer — the monitor sees exactly what a real
  ptrace-based monitor would.
- **DEP.**  Jumping to a non-text address raises an execution fault unless
  the attacker first made a mapped region executable (the ``mprotect``
  weaponization the paper's Table 1 tracks); the kernel records that event
  as arbitrary code execution.
"""

from dataclasses import dataclass, field

from repro.errors import (
    CFIFault,
    ExecutionFault,
    KernelError,
    ProcessKilled,
    VMFault,
    WouldBlock,
)
from repro.ir.instructions import (
    AddrGlobal,
    AddrLocal,
    BinOp,
    Branch,
    Call,
    CallIndirect,
    Const,
    FuncAddr,
    Gep,
    Imm,
    Index,
    Intrinsic,
    Jump,
    Label,
    Load,
    Move,
    Ret,
    Store,
    Syscall,
    Var,
    CTX_BIND_CONST,
    CTX_BIND_MEM,
    CTX_WRITE_MEM,
)
from repro.vm.loader import INSTR_STRIDE, STACK_TOP
from repro.vm.memory import WORD
from repro.vm.shadowstack import ShadowStack

_MASK64 = (1 << 64) - 1


def _wrap(value):
    """Wrap an int to signed 64-bit semantics (like real registers)."""
    value &= _MASK64
    if value >= 1 << 63:
        value -= 1 << 64
    return value


@dataclass
class CPUOptions:
    """Per-run CPU configuration (which baseline defenses are armed)."""

    cet: bool = False  # CET shadow stack (-fcf-protection=full)
    llvm_cfi: bool = False  # coarse-grained type-signature CFI
    dfi: bool = False  # DFI baseline: per-access tracking cost
    max_steps: int = 200_000_000
    #: Use predecoded instruction closures (repro.vm.predecode).  Wall-clock
    #: only — cycle semantics are identical either way; False forces the
    #: classic interpreter loop (the reference the parity tests diff against).
    predecode: bool = True


@dataclass
class ExitStatus:
    """How a run ended."""

    kind: str  # 'returned' | 'exit' | 'halt' | 'killed' | 'fault'
    code: int = 0
    reason: str = ""

    @property
    def ok(self):
        return self.kind in ("returned", "exit", "halt") and self.code == 0


@dataclass
class CPUStats:
    """Execution counters reported by benches (Table 5 runtime side)."""

    steps: int = 0
    calls: int = 0
    indirect_calls: int = 0
    rets: int = 0
    syscalls: int = 0
    instrumentation_hits: int = 0
    syscall_counts: dict = field(default_factory=dict)


class CPU:
    """Executes one process's image until exit, fault, or kill.

    ``entry``/``entry_args`` override the start point — used to run a
    cloned child at its thread start routine (§7.1's inherited-protection
    semantics) or any exported function directly.  ``stack_base`` places
    the stack; children get disjoint stacks in the shared address space.
    """

    def __init__(
        self,
        image,
        proc,
        kernel,
        options=None,
        entry=None,
        entry_args=(),
        stack_base=STACK_TOP,
    ):
        self.image = image
        self.proc = proc
        self.kernel = kernel
        self.options = options or CPUOptions()
        self.costs = proc.ledger_costs
        self.ledger = proc.ledger
        self.shadow_stack = ShadowStack() if self.options.cet else None
        self.stats = CPUStats()

        self.entry_name = entry or image.module.entry
        self.entry_args = tuple(entry_args)
        self.rip = image.func_base[self.entry_name]
        self.fp = 0
        self.sp = stack_base
        self.rax = 0
        self._cur_func = None

        #: code address -> callable(cpu); fired before the instruction runs.
        self.breakpoints = {}
        #: hook-point name -> callable(cpu); fired by the ``hook`` intrinsic.
        self.hooks = {}
        self._halted = None
        self._entered = False
        #: function name -> (body, version, ops, base, end) predecode cache
        self._decoded = {}
        #: return address -> caller destination frame offset (or None)
        self._ret_sites = {}
        proc.cpu = self

    # ------------------------------------------------------------------
    # value plumbing
    # ------------------------------------------------------------------

    def local_addr(self, var_name, func=None, fp=None):
        """Frame-slot address of ``var_name`` in the current (or given) frame."""
        func = func or self._cur_func
        fp = self.fp if fp is None else fp
        slot = func.local_slot(var_name)
        return fp - WORD * (slot + 1)

    def _value(self, operand):
        if isinstance(operand, Imm):
            return operand.value
        if isinstance(operand, Var):
            return self.proc.memory.read(self.local_addr(operand.name))
        raise VMFault("bad operand %r" % (operand,), rip=self.rip)

    def _set_var(self, var_name, value):
        self.proc.memory.write(self.local_addr(var_name), _wrap(value))

    # ------------------------------------------------------------------
    # run loop
    # ------------------------------------------------------------------

    def run(self):
        """Run to completion; returns an :class:`ExitStatus`."""
        status = self.run_slice(None)
        if not isinstance(status, ExitStatus):
            raise KernelError(
                "run() interrupted without a scheduler: %r" % (status,)
            )
        return status

    def run_slice(self, quantum=None):
        """Run until done, blocked, or preempted.

        Returns an :class:`ExitStatus` when the process finishes (exit,
        return from entry, fault, kill), the :class:`WouldBlock` instance
        when a syscall parks it (``rip`` still points at the syscall, so
        the next slice restarts it), or ``None`` once ``quantum`` cycles
        of its ledger have been consumed.  ``quantum=None`` never preempts.
        """
        if not self._entered:
            self._enter_main()
            self._entered = True
        try:
            if self.options.predecode:
                return self._run_loop_fast(quantum)
            return self._run_loop_classic(quantum)
        except WouldBlock as blocked:
            return blocked
        except ProcessKilled as killed:
            return ExitStatus("killed", 137, str(killed))
        except VMFault as fault:
            return ExitStatus("fault", 139, "%s: %s" % (type(fault).__name__, fault))

    def _run_loop_classic(self, quantum):
        """The reference interpreter loop (`_step` per instruction)."""
        opts = self.options
        limit = None if quantum is None else self.ledger.cycles + quantum
        while True:
            if not self.proc.alive:
                if self.proc.exited:
                    return ExitStatus("exit", self.proc.exit_code)
                return ExitStatus("killed", 137, self.proc.kill_reason or "")
            if self._halted is not None:
                return self._halted
            if self.stats.steps >= opts.max_steps:
                return ExitStatus("fault", 124, "step budget exhausted")
            if limit is not None and self.ledger.cycles >= limit:
                return None
            self.stats.steps += 1
            func, idx = self.image.resolve_code(self.rip)
            self._cur_func = func
            if self.breakpoints:
                bp = self.breakpoints.get(self.rip)
                if bp is not None:
                    bp(self)
                    if not self.proc.alive or self._halted is not None:
                        continue
            status = self._step(func.body[idx])
            if status is not None:
                return status

    def _run_loop_fast(self, quantum):
        """Predecoded loop: same semantics, far fewer Python operations.

        ``rip`` stays within the current function between control transfers,
        so the per-step bisect of ``resolve_code`` collapses to a range
        check; the instruction itself is a predecoded closure (see
        :mod:`repro.vm.predecode`).
        """
        proc = self.proc
        stats = self.stats
        ledger = self.ledger
        max_steps = self.options.max_steps
        limit = None if quantum is None else ledger.cycles + quantum
        breakpoints = self.breakpoints
        base = 0
        end = 0
        ops = None
        while True:
            if not proc.alive:
                if proc.exited:
                    return ExitStatus("exit", proc.exit_code)
                return ExitStatus("killed", 137, proc.kill_reason or "")
            if self._halted is not None:
                return self._halted
            if stats.steps >= max_steps:
                return ExitStatus("fault", 124, "step budget exhausted")
            if limit is not None and ledger.cycles >= limit:
                return None
            stats.steps += 1
            rip = self.rip
            if base <= rip < end:
                if rip & 3:
                    self.image.resolve_code(rip)  # raises misaligned fetch
                idx = (rip - base) >> 2
            else:
                func, idx = self.image.resolve_code(rip)
                self._cur_func = func
                entry = self._decoded.get(func.name)
                if (
                    entry is None
                    or entry[0] is not func.body
                    or entry[1] != func.version
                ):
                    entry = self._decode(func)
                ops = entry[2]
                base = entry[3]
                end = entry[4]
            if breakpoints:
                bp = breakpoints.get(rip)
                if bp is not None:
                    bp(self)
                    if not proc.alive or self._halted is not None:
                        continue
            status = ops[idx]()
            if status is not None:
                return status

    def _decode(self, func):
        from repro.vm.predecode import decode_function

        base = self.image.func_base[func.name]
        entry = (
            func.body,
            func.version,
            decode_function(self, func),
            base,
            base + len(func.body) * INSTR_STRIDE,
        )
        self._decoded[func.name] = entry
        return entry

    def _enter_main(self):
        """Set up the entry frame with a sentinel return address of 0."""
        entry_func = self.image.module.functions[self.entry_name]
        self.sp -= 2 * WORD
        self.proc.memory.write(self.sp + WORD, 0)  # return address sentinel
        self.proc.memory.write(self.sp, 0)  # saved fp sentinel
        self.fp = self.sp
        self.sp = self.fp - WORD * entry_func.frame_size
        for i, value in enumerate(self.entry_args):
            if i < len(entry_func.params):
                self.proc.memory.write(self.fp - WORD * (i + 1), _wrap(value))
        if self.shadow_stack is not None:
            self.shadow_stack.push(0)

    # ------------------------------------------------------------------
    # single instruction
    # ------------------------------------------------------------------

    def _step(self, instr):
        costs = self.costs
        ledger = self.ledger

        if isinstance(instr, Const):
            self._set_var(instr.dst, instr.value)
            ledger.charge(costs.instr)
        elif isinstance(instr, Move):
            self._set_var(instr.dst, self._value(instr.src))
            ledger.charge(costs.instr)
        elif isinstance(instr, BinOp):
            self._set_var(instr.dst, self._binop(instr))
            ledger.charge(costs.instr)
        elif isinstance(instr, Load):
            addr = self._value(instr.addr)
            self._dfi_access(addr, False)
            self._set_var(instr.dst, self.proc.memory.read(addr))
            ledger.charge(costs.load)
        elif isinstance(instr, Store):
            addr = self._value(instr.addr)
            self._dfi_access(addr, True)
            self.proc.memory.write(addr, _wrap(self._value(instr.value)))
            ledger.charge(costs.store)
        elif isinstance(instr, AddrLocal):
            self._set_var(instr.dst, self.local_addr(instr.var))
            ledger.charge(costs.instr)
        elif isinstance(instr, AddrGlobal):
            self._set_var(instr.dst, self.image.global_addr[instr.name])
            ledger.charge(costs.instr)
        elif isinstance(instr, Gep):
            struct = self.image.module.types.get(instr.struct)
            base = self._value(instr.base)
            self._set_var(instr.dst, base + WORD * struct.offset(instr.field_name))
            ledger.charge(costs.instr)
        elif isinstance(instr, Index):
            base = self._value(instr.base)
            idx = self._value(instr.index)
            self._set_var(instr.dst, base + WORD * idx * instr.scale)
            ledger.charge(costs.instr)
        elif isinstance(instr, FuncAddr):
            self._set_var(instr.dst, self.image.func_base[instr.func])
            ledger.charge(costs.instr)
        elif isinstance(instr, Label):
            pass  # free
        elif isinstance(instr, Jump):
            self.rip = self.image.addr_of(
                self._cur_func.name, self._cur_func.label_index(instr.label)
            )
            ledger.charge(costs.branch)
            return None
        elif isinstance(instr, Branch):
            taken = instr.then_label if self._value(instr.cond) else instr.else_label
            self.rip = self.image.addr_of(
                self._cur_func.name, self._cur_func.label_index(taken)
            )
            ledger.charge(costs.branch)
            return None
        elif isinstance(instr, Call):
            self._do_call(instr, self.image.func_base[instr.callee])
            self.stats.calls += 1
            return None
        elif isinstance(instr, CallIndirect):
            target = self._value(instr.target)
            self._cfi_check(instr, target)
            self.stats.indirect_calls += 1
            self._do_call(instr, target)
            return None
        elif isinstance(instr, Ret):
            return self._do_ret(instr)
        elif isinstance(instr, Syscall):
            self._do_syscall(instr)
        elif isinstance(instr, Intrinsic):
            self._do_intrinsic(instr)
        else:
            raise VMFault("unknown instruction %r" % (instr,), rip=self.rip)

        self.rip += INSTR_STRIDE
        return None

    def _binop(self, instr):
        a = self._value(instr.a)
        b = self._value(instr.b)
        op = instr.op
        if op == "+":
            return a + b
        if op == "-":
            return a - b
        if op == "*":
            return a * b
        if op == "//":
            return 0 if b == 0 else int(a / b) if (a < 0) != (b < 0) else a // b
        if op == "%":
            return 0 if b == 0 else a - b * (int(a / b) if (a < 0) != (b < 0) else a // b)
        if op == "&":
            return a & b
        if op == "|":
            return a | b
        if op == "^":
            return a ^ b
        if op == "<<":
            return a << (b & 63)
        if op == ">>":
            return a >> (b & 63)
        if op == "==":
            return int(a == b)
        if op == "!=":
            return int(a != b)
        if op == "<":
            return int(a < b)
        if op == "<=":
            return int(a <= b)
        if op == ">":
            return int(a > b)
        if op == ">=":
            return int(a >= b)
        raise VMFault("bad operator %r" % op, rip=self.rip)

    # ------------------------------------------------------------------
    # control transfers
    # ------------------------------------------------------------------

    def _do_call(self, instr, target_addr):
        """Shared call sequence for direct and indirect calls."""
        memory = self.proc.memory
        return_addr = self.rip + INSTR_STRIDE
        try:
            target_func, _ = self.image.resolve_code(target_addr)
        except ExecutionFault:
            # Jumping into data: succeeds only if the attacker first made
            # that region executable (code-injection endgame).
            if self.kernel.mm_is_executable(self.proc, target_addr):
                self.kernel.record_arbitrary_code_execution(self.proc, target_addr)
                raise ProcessKilled(
                    "arbitrary code execution at %#x" % target_addr,
                    reason="code-injection",
                )
            raise

        args = [self._value(a) for a in instr.args]

        self.sp -= 2 * WORD
        memory.write(self.sp + WORD, return_addr)
        memory.write(self.sp, self.fp)
        self.fp = self.sp
        self.sp = self.fp - WORD * target_func.frame_size
        for i, value in enumerate(args):
            if i < len(target_func.params):
                memory.write(self.fp - WORD * (i + 1), _wrap(value))

        if self.shadow_stack is not None:
            self.shadow_stack.push(return_addr)
            self.ledger.charge(self.costs.cet_per_transfer, "cet")
        self.ledger.charge(self.costs.call)
        self.rip = target_addr

    def _do_ret(self, instr):
        memory = self.proc.memory
        value = _wrap(self._value(instr.value)) if instr.value is not None else 0
        return_addr = memory.read(self.fp + WORD)
        saved_fp = memory.read(self.fp)

        if self.shadow_stack is not None:
            self.shadow_stack.check_pop(return_addr)
            self.ledger.charge(self.costs.cet_per_transfer, "cet")
        self.ledger.charge(self.costs.ret)
        self.stats.rets += 1

        self.rax = value
        self.sp = self.fp + 2 * WORD
        self.fp = saved_fp

        if return_addr == 0:
            return ExitStatus("returned", value)

        # Deliver the return value into the caller's destination variable.
        call_addr = return_addr - INSTR_STRIDE
        try:
            caller_func, idx = self.image.resolve_code(call_addr)
            call_instr = caller_func.body[idx]
        except ExecutionFault:
            caller_func, call_instr = None, None
        if (
            call_instr is not None
            and isinstance(call_instr, (Call, CallIndirect))
            and call_instr.dst is not None
        ):
            memory.write(
                self.local_addr(call_instr.dst, caller_func, self.fp), value
            )
        self.rip = return_addr
        return None

    # ------------------------------------------------------------------
    # syscalls & intrinsics
    # ------------------------------------------------------------------

    def _do_syscall(self, instr):
        args = [_wrap(self._value(a)) for a in instr.args]
        self.stats.syscalls += 1
        self.stats.syscall_counts[instr.name] = (
            self.stats.syscall_counts.get(instr.name, 0) + 1
        )
        self.proc.set_registers(instr.name, args, self.rip, self.fp, self.sp)
        self.ledger.charge(self.costs.syscall_base, "kernel")
        try:
            result = self.kernel.dispatch(self.proc, instr.name, args)
        except WouldBlock:
            # The syscall will restart: un-count this attempt so the stats
            # reflect completed dispatches regardless of interleaving.
            self.stats.syscalls -= 1
            self.stats.syscall_counts[instr.name] -= 1
            raise
        if instr.dst is not None:
            self._set_var(instr.dst, result)

    def _do_intrinsic(self, instr):
        name = instr.name
        if name == CTX_WRITE_MEM:
            self.stats.instrumentation_hits += 1
            runtime = self.proc.bastion_runtime
            addr = self._value(instr.args[0])
            size = self._value(instr.args[1]) if len(instr.args) > 1 else 1
            self.ledger.charge(
                self.costs.ctx_write_mem_base
                + self.costs.ctx_write_mem_per_slot * max(size, 1),
                "instrumentation",
            )
            if runtime is not None:
                runtime.ctx_write_mem(addr, size)
        elif name == CTX_BIND_MEM:
            self.stats.instrumentation_hits += 1
            runtime = self.proc.bastion_runtime
            addr = self._value(instr.args[0])
            self.ledger.charge(self.costs.ctx_bind, "instrumentation")
            if runtime is not None:
                runtime.ctx_bind_mem(self._meta_callsite(instr), instr.meta["pos"], addr)
        elif name == CTX_BIND_CONST:
            self.stats.instrumentation_hits += 1
            runtime = self.proc.bastion_runtime
            value = self._value(instr.args[0])
            self.ledger.charge(self.costs.ctx_bind, "instrumentation")
            if runtime is not None:
                runtime.ctx_bind_const(
                    self._meta_callsite(instr), instr.meta["pos"], value
                )
        elif name == "trace":
            self.proc.trace_log.append([self._value(a) for a in instr.args])
        elif name == "hook":
            hook = self.hooks.get(instr.meta.get("point"))
            if hook is not None:
                hook(self)
        elif name == "cycle_burn":
            amount = self._value(instr.args[0])
            self.ledger.charge(amount)
            if self.options.dfi:
                # burned cycles stand for real computation whose loads and
                # stores DFI would instrument too
                self.ledger.charge(
                    amount * self.costs.dfi_elided_millis // 1000, "dfi"
                )
        elif name == "halt":
            self._halted = ExitStatus("halt", 0)
        else:
            raise VMFault("unknown intrinsic %r" % name, rip=self.rip)

    def _meta_callsite(self, instr):
        """Code address of the callsite an instrumented bind refers to."""
        return self.image.addr_of(self._cur_func.name, instr.meta["callsite_index"])

    # ------------------------------------------------------------------
    # baseline defenses
    # ------------------------------------------------------------------

    def _cfi_check(self, instr, target_addr):
        """LLVM-CFI baseline: type-signature equivalence class check."""
        if not self.options.llvm_cfi:
            return
        self.ledger.charge(self.costs.llvm_cfi_check, "cfi")
        site_sig = instr.sig or ("fn%d" % len(instr.args))
        target_name = self.image.func_containing(target_addr)
        if target_name is None:
            raise CFIFault(
                "indirect call to non-function address %#x" % target_addr,
                rip=self.rip,
            )
        target_func = self.image.module.functions[target_name]
        if target_addr != self.image.func_base[target_name]:
            raise CFIFault(
                "indirect call into function body %s" % self.image.describe(target_addr),
                rip=self.rip,
            )
        if target_func.sig != site_sig:
            raise CFIFault(
                "CFI EC mismatch at %s: site %s, target %s (%s)"
                % (self.image.describe(self.rip), site_sig, target_func.sig, target_name),
                rip=self.rip,
            )

    def _dfi_access(self, addr, is_write):
        """DFI baseline: charge the per-access tracking cost."""
        if self.options.dfi:
            self.ledger.charge(self.costs.dfi_per_access, "dfi")
