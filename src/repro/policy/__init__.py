"""Compiled policy artifacts: the analysis → mechanism seam.

Static analyses *produce* a :class:`CompiledPolicy`; protection mechanisms
*consume* one.  Before this package, each mechanism reached into the
private tables of whichever analysis happened to back it (the
``binary_only`` mechanism read ``BinaryRecovery.reachable_syscalls`` and
``.call_types`` directly).  Now both producers —

- :func:`repro.analyze.flowgraph.compile_policy` (compiler metadata +
  module IR: the SFIP-style syscall-flow extraction), and
- :func:`repro.analyze.binary.compile_policy` (metadata-free binary
  recovery, B-Side style)

— emit the same artifact: a presence table, per-syscall call kinds, and
an origin-annotated syscall-transition graph, serialized byte-stably with
provenance so CI can pin it (``tests/fixtures/sfip_precision.json``).

Consumers: :class:`repro.mechanisms.sfip.SfipMechanism` enforces the
transition graph as a per-process state machine at the dispatch pipeline's
seccomp stage; :class:`repro.mechanisms.binary.BinaryOnlyMechanism`
synthesizes its KILL-by-default filter and call-kind checks from the
binary-produced policy.  See ``docs/mechanisms.md``.
"""

from repro.policy.artifact import (
    SCHEMA,
    START,
    CompiledPolicy,
    build_presence_filter,
    policy_json,
)
from repro.policy.flow import FlowFunction, build_transition_graph

__all__ = [
    "SCHEMA",
    "START",
    "CompiledPolicy",
    "FlowFunction",
    "build_presence_filter",
    "build_transition_graph",
    "policy_json",
]
