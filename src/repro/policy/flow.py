"""The shared syscall-transition-flow engine (SFIP's static extraction).

Both policy producers — the metadata-driven flowgraph pass and the
metadata-free binary analyzer — reduce their program view to the same
shape: a set of :class:`FlowFunction` records (a flat instruction run per
function) plus an entry point, the indirect-call target set, and the
thread-entry set.  :func:`build_transition_graph` then runs one
compositional interprocedural dataflow over that shape:

- per function, a CFG is rebuilt from the flat run (``Label`` leaders,
  ``Jump``/``Branch``/``Ret`` terminators, fallthrough otherwise);
- the block state is the set of syscalls that can be the *last one
  issued* at that point (plus a bottom token for "none yet since
  function entry");
- calls compose through per-callee summaries — FIRST (the (syscall,
  origin) pairs a call can issue first), LAST (the syscalls it can issue
  last), EMPTY (whether a syscall-free path exists) — iterated to a
  global fixpoint, so recursive wrappers and mutual recursion converge
  without path enumeration;
- every discovered adjacency is recorded as ``prev -> next`` annotated
  with its *origin*: the function whose body contains the ``next``
  syscall instruction (what the ``sfip_origin`` variant checks against
  ``image.func_containing(rip)`` at dispatch time).

Soundness: states and summaries only ever grow, indirect calls fan out
to every address-taken target, and unresolvable callees are treated as
syscall-free pass-throughs — the graph over-approximates every syscall
sequence a legitimate execution can produce, so enforcing it can only
kill sequences no benign run reaches.  Precision is what the sfip
fixture (``tests/fixtures/sfip_precision.json``) pins.

Spawned children: the kernel runs clone() children from a thread entry,
and :class:`repro.mechanisms.sfip.SfipMechanism` seeds a child's state
from its parent's (which is ``clone`` at that instant) — so the engine
adds ``clone -> first(thread_entry)`` edges rather than modelling child
streams separately.
"""

from dataclasses import dataclass

from repro.ir.instructions import (
    Branch,
    Call,
    CallIndirect,
    Jump,
    Label,
    Ret,
    Syscall,
)

#: block-state token for "no syscall issued yet since function entry"
_BOT = None


@dataclass(frozen=True)
class FlowFunction:
    """One function as the flow engine sees it.

    ``fid`` is any hashable identity (the symbol name for IR functions,
    the base address for recovered binary runs); ``symbol`` is the
    presentation name used for origin annotations — it must match what
    ``image.func_containing`` returns at runtime for origin enforcement
    to line up.
    """

    fid: object
    symbol: str
    instrs: tuple


class _FuncFlow:
    """Preprocessed per-function CFG: blocks of events + successor ids."""

    __slots__ = ("blocks", "direct_callees", "has_indirect")

    def __init__(self, func, resolve_callee, indirect_targets):
        instrs = func.instrs
        n = len(instrs)
        leaders = {0}
        labels = {}  # label name -> [instr index of the Label]
        for i, ins in enumerate(instrs):
            if isinstance(ins, Label):
                leaders.add(i)
                labels.setdefault(ins.name, []).append(i)
            elif ins.is_terminator and i + 1 < n:
                leaders.add(i + 1)
        ordered = sorted(leaders) if n else []
        block_of = {}
        for bid, start in enumerate(ordered):
            stop = ordered[bid + 1] if bid + 1 < len(ordered) else n
            for i in range(start, stop):
                block_of[i] = bid

        self.direct_callees = set()
        self.has_indirect = False
        self.blocks = []  # (events, successor bids, is_exit)
        for bid, start in enumerate(ordered):
            stop = ordered[bid + 1] if bid + 1 < len(ordered) else n
            events = []
            for ins in instrs[start:stop]:
                if isinstance(ins, Syscall):
                    events.append(("sys", ins.name))
                elif isinstance(ins, Call):
                    callee = resolve_callee(ins.callee)
                    if callee is not None:
                        self.direct_callees.add(callee)
                        events.append(("call", (callee,)))
                    else:
                        # unresolvable target: a syscall-free pass-through
                        events.append(("call", ()))
                elif isinstance(ins, CallIndirect):
                    self.has_indirect = True
                    events.append(("call", tuple(indirect_targets)))
            last = instrs[stop - 1]
            succs = []
            is_exit = False
            if isinstance(last, Ret):
                is_exit = True
            elif isinstance(last, Jump):
                targets = labels.get(last.label, ())
                succs = [block_of[i] for i in targets]
                is_exit = not targets
            elif isinstance(last, Branch):
                targets = list(labels.get(last.then_label, ())) + list(
                    labels.get(last.else_label, ())
                )
                succs = [block_of[i] for i in targets]
                is_exit = len(targets) < 2
            elif bid + 1 < len(ordered):
                succs = [bid + 1]
            else:
                is_exit = True  # fell off the end of the run
            self.blocks.append((tuple(events), tuple(sorted(set(succs))), is_exit))


@dataclass
class TransitionGraph:
    """What :func:`build_transition_graph` returns."""

    #: prev -> {next: frozenset of origin symbols}
    transitions: dict
    #: sorted syscall names appearing as a transition target (the
    #: presence set the flow engine can justify)
    nodes: tuple
    #: fids the engine found reachable from the roots
    reachable: frozenset


def build_transition_graph(
    functions,
    entry,
    resolve_callee,
    indirect_targets=(),
    thread_entries=(),
):
    """Run the interprocedural flow fixpoint; see the module docstring.

    ``functions`` maps fid -> :class:`FlowFunction`; ``resolve_callee``
    maps a direct-call operand name to a fid (or None); ``entry`` and
    ``thread_entries`` are fids; ``indirect_targets`` are the fids any
    indirect callsite may reach.
    """
    indirect_targets = tuple(t for t in indirect_targets if t in functions)
    thread_entries = tuple(t for t in thread_entries if t in functions)

    def resolver(name):
        fid = resolve_callee(name)
        return fid if fid in functions else None

    flows = {}

    def flow_of(fid):
        flow = flows.get(fid)
        if flow is None:
            flow = _FuncFlow(functions[fid], resolver, indirect_targets)
            flows[fid] = flow
        return flow

    # -- function-level reachability ------------------------------------
    reachable = set()
    queue = [entry] + list(thread_entries)
    while queue:
        fid = queue.pop()
        if fid in reachable or fid not in functions:
            continue
        reachable.add(fid)
        flow = flow_of(fid)
        queue.extend(flow.direct_callees)
        if flow.has_indirect:
            queue.extend(indirect_targets)

    # -- global summary fixpoint ----------------------------------------
    first = {fid: set() for fid in reachable}  # fid -> {(syscall, origin)}
    last = {fid: set() for fid in reachable}  # fid -> {syscall}
    empty = {fid: False for fid in reachable}  # syscall-free path exists?
    transitions = {}  # prev -> {next: set(origins)}

    def record(prev, nxt, origin):
        origins = transitions.setdefault(prev, {}).setdefault(nxt, set())
        if origin not in origins:
            origins.add(origin)
            return True
        return False

    def analyze(fid):
        """One per-function block fixpoint; True if anything grew."""
        func = functions[fid]
        flow = flow_of(fid)
        changed = False
        if not flow.blocks:
            if not empty[fid]:
                empty[fid] = True
                changed = True
            return changed
        block_in = [set() for _ in flow.blocks]
        block_in[0].add(_BOT)
        work = [0]
        while work:
            bid = work.pop()
            events, succs, is_exit = flow.blocks[bid]
            state = set(block_in[bid])
            for event in events:
                if event[0] == "sys":
                    name = event[1]
                    for token in state:
                        if token is _BOT:
                            if (name, func.symbol) not in first[fid]:
                                first[fid].add((name, func.symbol))
                                changed = True
                        else:
                            changed |= record(token, name, func.symbol)
                    state = {name}
                else:
                    callees = [c for c in event[1] if c in reachable]
                    callee_first = set()
                    callee_last = set()
                    callee_empty = not callees
                    for callee in callees:
                        callee_first |= first[callee]
                        callee_last |= last[callee]
                        callee_empty |= empty[callee]
                    for name, origin in callee_first:
                        for token in state:
                            if token is _BOT:
                                if (name, origin) not in first[fid]:
                                    first[fid].add((name, origin))
                                    changed = True
                            else:
                                changed |= record(token, name, origin)
                    new_state = set(callee_last)
                    if callee_empty:
                        new_state |= state
                    state = new_state
            if is_exit:
                for token in state:
                    if token is _BOT:
                        if not empty[fid]:
                            empty[fid] = True
                            changed = True
                    elif token not in last[fid]:
                        last[fid].add(token)
                        changed = True
            for succ in succs:
                if not state <= block_in[succ]:
                    block_in[succ] |= state
                    work.append(succ)
        return changed

    ordered = sorted(reachable, key=lambda fid: functions[fid].symbol)
    while True:
        grew = False
        for fid in ordered:
            grew |= analyze(fid)
        if not grew:
            break

    # -- roots: the START row, and clone -> thread-entry firsts ---------
    if entry in reachable:
        from repro.policy.artifact import START

        for name, origin in first[entry]:
            record(START, name, origin)
    nodes = {nxt for nexts in transitions.values() for nxt in nexts}
    if thread_entries and "clone" in nodes:
        for te in thread_entries:
            for name, origin in first[te]:
                record("clone", name, origin)
        nodes = {nxt for nexts in transitions.values() for nxt in nexts}

    return TransitionGraph(
        transitions={
            prev: {nxt: frozenset(origins) for nxt, origins in nexts.items()}
            for prev, nexts in transitions.items()
        },
        nodes=tuple(sorted(nodes)),
        reachable=frozenset(reachable),
    )
