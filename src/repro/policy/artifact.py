"""The :class:`CompiledPolicy` artifact and its byte-stable serialization.

A compiled policy is everything a syscall-filtering mechanism needs,
decoupled from the analysis that derived it:

- **presence** — the syscall allowlist (KILL anything else in-kernel);
- **call_kinds** — per sensitive syscall, the invocation kinds
  (``direct`` / ``indirect``) legitimate code can produce;
- **transitions** — the syscall-transition graph: for each predecessor
  state (a syscall name, or :data:`START` for "no syscall issued yet"),
  the legal successor syscalls, each annotated with the *origins* — the
  functions whose code can issue that successor on a path where the
  predecessor was the last syscall.  ``clone`` additionally carries the
  first syscalls of every thread entry (a spawned child's state is
  snapshotted from its parent at the clone dispatch, so its first syscall
  is checked against ``clone``'s successors).

Serialization is plain dicts/lists/strings under ``json.dumps(indent=2,
sort_keys=True)`` — byte-stable, so CI pins it exactly like the
binary-precision payload.  ``provenance`` records which producer emitted
the artifact and the sizes of the analysis context it was derived from
(never wall-clock or environment data, which would break the pinning).
"""

import json
from dataclasses import dataclass, field

SCHEMA = "repro-policy/v1"

#: the predecessor token for "process has not issued a syscall yet"
START = "^"


@dataclass(frozen=True)
class CompiledPolicy:
    """One analysis-produced, mechanism-consumable policy artifact."""

    producer: str  # 'flowgraph' | 'binary'
    program: str
    entry: str
    #: sorted tuple of syscall names any legitimate execution can issue
    presence: tuple
    #: syscall -> tuple of legal call kinds ('direct', 'indirect')
    call_kinds: dict
    #: prev -> {next: tuple of sorted origin function names}
    transitions: dict
    #: producer-specific derivation context (counts only, byte-stable)
    provenance: dict = field(default_factory=dict)
    schema: str = SCHEMA

    # -- queries (the mechanisms' hot path precomputes from these) ------

    def successors(self, prev):
        """``{next: origins}`` legal after ``prev`` (empty dict if none)."""
        return self.transitions.get(prev, {})

    def allows_transition(self, prev, nxt):
        return nxt in self.transitions.get(prev, {})

    def origins_of(self, prev, nxt):
        """Origin tuple for ``prev -> nxt``, or None when illegal."""
        return self.transitions.get(prev, {}).get(nxt)

    @property
    def start_syscalls(self):
        """Syscalls legal as a root process's first dispatch."""
        return tuple(sorted(self.transitions.get(START, {})))

    # -- metrics (what the sfip precision fixture pins) -----------------

    def edge_count(self):
        return sum(len(nexts) for nexts in self.transitions.values())

    def origin_count(self):
        return sum(
            len(origins)
            for nexts in self.transitions.values()
            for origins in nexts.values()
        )

    def density_pct(self):
        """Transition-graph density vs the complete graph over presence —
        SFIP's headline precision number (lower = tighter)."""
        nodes = len(self.presence)
        possible = nodes * nodes + nodes  # + the START row
        if possible == 0:
            return 0.0
        return round(100.0 * self.edge_count() / possible, 2)

    # -- serialization --------------------------------------------------

    def to_payload(self):
        return {
            "schema": self.schema,
            "producer": self.producer,
            "program": self.program,
            "entry": self.entry,
            "presence": sorted(self.presence),
            "call_kinds": {
                name: sorted(kinds)
                for name, kinds in sorted(self.call_kinds.items())
            },
            "transitions": {
                prev: {
                    nxt: sorted(origins)
                    for nxt, origins in sorted(nexts.items())
                }
                for prev, nexts in sorted(self.transitions.items())
            },
            "provenance": self.provenance,
        }

    @classmethod
    def from_payload(cls, payload):
        if payload.get("schema") != SCHEMA:
            raise ValueError(
                "not a %s payload (schema=%r)"
                % (SCHEMA, payload.get("schema"))
            )
        return cls(
            producer=payload["producer"],
            program=payload["program"],
            entry=payload["entry"],
            presence=tuple(payload["presence"]),
            call_kinds={
                name: tuple(kinds)
                for name, kinds in payload["call_kinds"].items()
            },
            transitions={
                prev: {
                    nxt: tuple(origins)
                    for nxt, origins in nexts.items()
                }
                for prev, nexts in payload["transitions"].items()
            },
            provenance=dict(payload.get("provenance", {})),
        )


def policy_json(policy):
    """The canonical byte-stable serialization (what CI fixtures pin)."""
    return json.dumps(policy.to_payload(), indent=2, sort_keys=True)


def build_presence_filter(policy, label=None):
    """KILL-by-default seccomp filter over the policy's presence table.

    The filtering half of flow-integrity protection: anything outside the
    presence set dies in-kernel before the transition check ever runs.
    Shared by the ``binary_only`` and ``sfip`` mechanisms.
    """
    from repro.kernel.seccomp import (
        SECCOMP_RET_ALLOW,
        SECCOMP_RET_KILL_PROCESS,
        build_action_filter,
    )
    from repro.syscalls.table import SYSCALLS

    allowed = set(policy.presence)
    actions = {
        entry.nr: SECCOMP_RET_KILL_PROCESS
        for entry in SYSCALLS
        if entry.name not in allowed
    }
    return build_action_filter(
        actions,
        default_action=SECCOMP_RET_ALLOW,
        label=label or policy.producer,
    )
