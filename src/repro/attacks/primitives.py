"""Attacker primitives: the §4 threat model as code.

An :class:`AttackEnv` gives an attack script exactly what the paper grants
the adversary — arbitrary read/write into the victim's memory (via one or
more assumed memory-corruption vulnerabilities), knowledge of the address
layout (the read primitive defeats coarse ASLR), and nothing else.  DEP and
(optionally) CET remain in force; the monitor's state and the kernel are
out of reach.

Trigger points: attacks arm themselves on the victim's ``hook`` intrinsics
— each hook stands in for reaching the vulnerable code path (e.g. the
chunked-encoding parser of CVE-2013-2028).
"""

from dataclasses import dataclass, field

from repro.errors import AttackError
from repro.vm.memory import WORD

#: attacker-groomed staging area (heap-spray landing zone)
SCRATCH_BASE = 0x7F50_0000_0000


@dataclass
class AttackEnv:
    """Everything an attack script may touch."""

    kernel: object
    proc: object
    cpu: object
    image: object
    monitor: object = None
    _scratch_next: int = SCRATCH_BASE
    notes: list = field(default_factory=list)

    # -- symbol knowledge ---------------------------------------------------

    def func_addr(self, name):
        try:
            return self.image.func_base[name]
        except KeyError:
            raise AttackError("no such function %r in target" % name) from None

    def global_addr(self, name):
        try:
            return self.image.global_addr[name]
        except KeyError:
            raise AttackError("no such global %r in target" % name) from None

    def struct_offset(self, struct, field_name):
        return WORD * self.image.module.types.get(struct).offset(field_name)

    # -- the arbitrary read/write primitive -----------------------------------

    def read(self, addr):
        return self.proc.memory.read(addr)

    def write(self, addr, value):
        self.proc.memory.write(addr, value)

    def write_cstr(self, addr, text):
        self.proc.memory.write_cstr(addr, text)

    # -- staging ---------------------------------------------------------------

    def plant_words(self, words, align_words=1):
        """Spray words into the staging area; returns their address."""
        if align_words > 1:
            stride = WORD * align_words
            self._scratch_next = (
                (self._scratch_next + stride - 1) // stride * stride
            )
        addr = self._scratch_next
        self.proc.memory.write_block(addr, words)
        self._scratch_next = addr + WORD * (len(words) + 2)
        return addr

    def plant_string(self, text):
        """Spray a C string; returns its address."""
        addr = self._scratch_next
        used = self.proc.memory.write_cstr(addr, text)
        self._scratch_next = addr + WORD * (used + 2)
        return addr

    def fake_frame(self, params, saved_fp=0, return_addr=0):
        """Build a counterfeit stack frame in the staging area.

        Layout matches the CPU: ``mem[fp] = saved_fp``, ``mem[fp+8] =
        return address``, parameter ``i`` at ``fp - 8*(i+1)``.  Returns the
        frame-pointer value.
        """
        base = self._scratch_next + WORD * (len(params) + 4)
        for i, value in enumerate(params):
            self.proc.memory.write(base - WORD * (i + 1), value)
        self.proc.memory.write(base, saved_fp)
        self.proc.memory.write(base + WORD, return_addr)
        self._scratch_next = base + 4 * WORD
        return base

    # -- control over the live frame ---------------------------------------------

    def current_local_addr(self, var_name):
        """Address of a local slot in the frame active at the trigger."""
        return self.cpu.local_addr(var_name)

    def smash_return(self, new_return_addr, new_saved_fp=None):
        """Classic stack smash of the *current* frame."""
        self.write(self.cpu.fp + WORD, new_return_addr)
        if new_saved_fp is not None:
            self.write(self.cpu.fp, new_saved_fp)

    # -- triggers -----------------------------------------------------------------

    def on_hook(self, point, fn, once=True):
        """Arm ``fn`` at the victim's ``point`` hook (the vulnerability).

        Under the preemptive scheduler the hook point may execute on a
        forked worker, not the process the attack was staged on (hook
        tables are shared across the tree like the binary is), so the env
        is rebound to the firing CPU for the callback — frame-relative
        reads and writes must corrupt the stack that is actually live.
        """
        state = {"fired": False}

        def trampoline(cpu):
            if once and state["fired"]:
                return
            state["fired"] = True
            prev_cpu, prev_proc = self.cpu, self.proc
            self.cpu, self.proc = cpu, cpu.proc
            try:
                fn(self)
            finally:
                self.cpu, self.proc = prev_cpu, prev_proc

        self.cpu.hooks[point] = trampoline

    # -- oracles -------------------------------------------------------------------

    def events(self, kind):
        """Security-event oracle: refuses to answer over a truncated log.

        An attack verdict derived from a ring that shed events would be
        silently wrong (a recorded-then-evicted ``execve`` reads as "the
        attack failed"), so a dropped event here is an assertion failure,
        not a warning.
        """
        assert self.kernel.events.dropped == 0, (
            "kernel event ring dropped %d events — the attack oracle would "
            "be unsound; raise Kernel(events_capacity=...)"
            % self.kernel.events.dropped
        )
        return self.kernel.events_of(kind)

    def execve_paths(self):
        return [e.details.get("path") for e in self.events("execve")]

    def executed(self, path):
        return path in self.execve_paths()

    def made_memory_executable(self):
        """Any mprotect/mmap that produced an executable+writable mapping."""
        for event in self.events("mprotect_exec"):
            if event.details.get("writable"):
                return True
        return self.proc.mm is not None and self.proc.mm.has_wx_region()

    def opened(self, path):
        return any(p == path for _pid, p in self.kernel.open_log)

    def setuid_attempted(self, uid):
        return any(e.details.get("uid") == uid for e in self.events("setuid"))

    def chmod_attempted(self, path):
        return any(e.details.get("path") == path for e in self.events("chmod"))

    def connected_to(self, port):
        return any(e.details.get("port") == port for e in self.events("connect"))

    def mremap_attempted(self):
        return bool(self.events("mremap"))
