"""The §11.1 study: BASTION under *arbitrary* memory read/write.

The paper concedes that, in theory, an adversary with unconstrained
read/write can circumvent all three contexts — but argues it is hard in
practice because (a) most constraints are static and live in the monitor's
address space, out of reach, and (b) the dynamic state (shadow copies,
binding records) would have to be forged consistently, which requires
knowing the shadow region's location and hash layout.

This module makes that argument quantitative with three adversaries, all
mounted on the Control Jujutsu scenario against mini-NGINX:

- :func:`oracle_forger` — knows the shadow region base and hash function
  (the paper's "very challenging" best case): forges shadow copies for its
  counterfeit exec context and succeeds, at a measured cost in extra
  writes;
- :func:`blind_forger` — same attack but with a wrong guess for the shadow
  base (sparse-address-space hiding): blocked;
- :func:`constant_violator` — tries to defeat a *static* constraint (a
  compile-time-constant argument): impossible by construction, because the
  expected value lives in the monitor's metadata, which no write into the
  application's address space can reach.
"""

from dataclasses import dataclass

from repro.attacks.catalog import attack_by_name
from repro.attacks.primitives import AttackEnv
from repro.attacks.runner import _target_artifact, attack_target
from repro.kernel.kernel import Kernel
from repro.monitor.monitor import BastionMonitor
from repro.monitor.policy import ContextPolicy
from repro.runtime.shadow_table import COPIES_LAYOUT, ShadowTable, ShadowTableLayout
from repro.vm.cpu import CPUOptions
from repro.vm.memory import WORD


@dataclass
class AdaptiveOutcome:
    """Result of one adaptive-attacker run."""

    name: str
    succeeded: bool
    blocked_by: str = None
    attacker_writes: int = 0
    detail: str = ""


class _CountingMemory:
    """Counts the attacker's write primitive invocations."""

    def __init__(self, env):
        self.env = env
        self.writes = 0

    def write(self, addr, value):
        self.writes += 1
        self.env.proc.memory.write(addr, value)

    def write_cstr(self, addr, text):
        self.writes += len(text) + 1
        self.env.proc.memory.write_cstr(addr, text)


def _launch_jujutsu(stage):
    """Run Control Jujutsu's trigger with a custom corruption payload."""
    spec = attack_by_name("control_jujutsu")
    kernel = Kernel()
    attack_target("nginx").prepare_env(kernel)
    artifact = _target_artifact("nginx", False)
    monitor = BastionMonitor(artifact, policy=ContextPolicy.full())
    proc, cpu = monitor.launch(kernel, cpu_options=CPUOptions(cet=False))
    env = AttackEnv(kernel=kernel, proc=proc, cpu=cpu, image=cpu.image, monitor=monitor)
    counter = _CountingMemory(env)
    env.on_hook("ngx_output_chain_icall", lambda e: stage(e, counter))
    attack_target("nginx").attach_workload(kernel, proc)
    cpu.run()
    return env, monitor, counter


def _forge_payload(env, counter, shadow_base):
    """Counterfeit exec context + forged shadow copies at ``shadow_base``."""
    sh = env._scratch_next
    counter.write_cstr(sh, "/bin/sh")
    env._scratch_next += 16 * WORD
    argv = env._scratch_next
    counter.write(argv, sh)
    counter.write(argv + WORD, 0)
    env._scratch_next += 4 * WORD
    ctx = env._scratch_next
    counter.write(ctx, sh)
    counter.write(ctx + WORD, argv)
    counter.write(ctx + 2 * WORD, 0)
    env._scratch_next += 5 * WORD

    # forge shadow copies so the monitor's origin-lvalue checks pass:
    # the attacker must reimplement the table's probing at shadow_base
    layout = ShadowTableLayout(
        shadow_base, COPIES_LAYOUT.capacity, COPIES_LAYOUT.entry_words
    )
    forged = ShadowTable(env.proc.memory, layout)
    for slot_addr in (ctx, ctx + WORD, ctx + 2 * WORD, argv, argv + WORD):
        entry = forged.put(slot_addr, (env.read(slot_addr),))
        counter.writes += 2  # key + value words
    for i in range(len("/bin/sh") + 1):
        forged.put(sh + i * WORD, (env.read(sh + i * WORD),))
        counter.writes += 2

    # the hijack itself
    counter.write(env.current_local_addr("flt"), env.func_addr("ngx_execute_proc"))
    counter.write(env.current_local_addr("in_"), ctx)


def oracle_forger():
    """§11.1's theoretical bypass: full layout knowledge."""
    def stage(env, counter):
        _forge_payload(env, counter, COPIES_LAYOUT.base)

    env, monitor, counter = _launch_jujutsu(stage)
    return AdaptiveOutcome(
        name="oracle_forger",
        succeeded=env.executed("/bin/sh"),
        blocked_by=monitor.violations[0].context if monitor.violations else None,
        attacker_writes=counter.writes,
        detail="attacker knows the shadow region base and hash layout",
    )


def blind_forger(guess_offset=1 << 30):
    """Same payload, but the shadow-base guess is wrong (region hiding)."""
    def stage(env, counter):
        _forge_payload(env, counter, COPIES_LAYOUT.base + guess_offset)

    env, monitor, counter = _launch_jujutsu(stage)
    return AdaptiveOutcome(
        name="blind_forger",
        succeeded=env.executed("/bin/sh"),
        blocked_by=monitor.violations[0].context if monitor.violations else None,
        attacker_writes=counter.writes,
        detail="shadow base guessed %#x off" % guess_offset,
    )


def constant_violator():
    """Attack a compile-time-constant argument (mprotect guard prot).

    ``ngx_guard_pool`` calls ``mprotect(addr, 4096, 1)`` — the length and
    prot are constants recorded in the monitor's metadata.  The attacker
    corrupts the wrapper-bound registers by rewriting the frame slots the
    call will read, and may scribble over the whole shadow region too: the
    expected values are not *in* the application's address space, so no
    number of writes helps.
    """
    kernel = Kernel()
    attack_target("nginx").prepare_env(kernel)
    artifact = _target_artifact("nginx", False)
    monitor = BastionMonitor(artifact, policy=ContextPolicy.full())
    proc, cpu = monitor.launch(kernel, cpu_options=CPUOptions(cet=False))
    env = AttackEnv(kernel=kernel, proc=proc, cpu=cpu, image=cpu.image, monitor=monitor)
    counter = _CountingMemory(env)

    # Corrupt the wrapper's prot *parameter slot* right at its syscall
    # instruction — after the legitimate constant was passed, before the
    # monitor's stop.  The register will read 7; the metadata says 1.
    def at_syscall(c):
        counter.write(c.local_addr("a2"), 7)

    cpu.breakpoints[env.func_addr("mprotect")] = at_syscall
    attack_target("nginx").attach_workload(kernel, proc)
    cpu.run()
    return AdaptiveOutcome(
        name="constant_violator",
        succeeded=env.made_memory_executable(),
        blocked_by=monitor.violations[0].context if monitor.violations else None,
        attacker_writes=counter.writes,
        detail="constant argument pinned in monitor metadata",
    )


def adaptive_study():
    """Run all three adversaries; returns ``[AdaptiveOutcome, ...]``."""
    return [oracle_forger(), blind_forger(), constant_violator()]
