"""The §10 security study: 32 referenced exploits across 17 scenarios.

- :mod:`repro.attacks.primitives` — the threat model of §4 as code: an
  attacker with arbitrary read/write into the protected process, symbol
  knowledge (coarse ASLR assumed bypassed via the read primitive), and
  trigger points standing in for the memory-corruption vulnerabilities
  (CVE-2013-2028 and friends);
- :mod:`repro.attacks.rop` — ret2libc chain construction over the VM's
  real in-memory stack;
- :mod:`repro.attacks.catalog` — every Table 6 row as an executable
  scenario with a kernel-event success oracle;
- :mod:`repro.attacks.runner` — runs each attack unprotected (it must
  succeed) and under each single context (CT / CF / AI) plus full BASTION,
  regenerating the Table 6 ✓/× matrix.
"""

from repro.attacks.primitives import AttackEnv
from repro.attacks.catalog import AttackSpec, CATALOG, attack_by_name, fuzz_extension
from repro.attacks.runner import (
    AttackOutcome,
    AttackEvaluation,
    AttackTarget,
    BlockingContext,
    TARGETS,
    attack_target,
    classify_blocking,
    run_attack,
    evaluate_attack,
    table6_matrix,
    target_names,
)
from repro.attacks.adaptive import (
    AdaptiveOutcome,
    adaptive_study,
    blind_forger,
    constant_violator,
    oracle_forger,
)

__all__ = [
    "AttackEnv",
    "AttackSpec",
    "AttackTarget",
    "BlockingContext",
    "CATALOG",
    "TARGETS",
    "attack_by_name",
    "attack_target",
    "classify_blocking",
    "fuzz_extension",
    "target_names",
    "AttackOutcome",
    "AttackEvaluation",
    "run_attack",
    "evaluate_attack",
    "table6_matrix",
    "AdaptiveOutcome",
    "adaptive_study",
    "oracle_forger",
    "blind_forger",
    "constant_violator",
]
