"""ret2libc chain construction (§10.1).

A ROP payload in this VM is a linked list of counterfeit frames: each frame
holds the arguments for one libc target, its saved-fp slot points at the
next frame, and its return-address slot points at the next target's entry.
Smashing the victim frame's return address with the first target launches
the chain — precisely because the CPU's ``ret`` trusts the in-memory stack
(and precisely what a CET shadow stack faults on).
"""


def build_ret2libc_chain(env, calls):
    """Stage a chain of ``(function_name, args)`` libc calls.

    Returns ``(first_target_addr, first_frame_fp)``; smash the victim frame
    with these to launch.  The last frame's return address is 0, so the
    process "exits cleanly" after the payload (stealthy exit).
    """
    if not calls:
        raise ValueError("empty ROP chain")
    frames = []
    # Build from the last gadget backwards so each frame can point onward.
    next_fp = 0
    next_target = 0
    for name, args in reversed(calls):
        target = env.func_addr(name)
        fp = env.fake_frame(list(args), saved_fp=next_fp, return_addr=next_target)
        frames.append(fp)
        next_fp = fp
        next_target = target
    return next_target, next_fp


def launch_ret2libc(env, calls):
    """Build the chain and smash the current frame to start it."""
    target, frame = build_ret2libc_chain(env, calls)
    env.smash_return(target, frame)
    return target, frame
