"""The Table 6 attack catalog: every row as an executable scenario.

Each :class:`AttackSpec` carries the paper's expected verdict per context
(``True`` = that context alone blocks the exploit, the table's ✓) plus a
``stage`` function that arms the corruption at the victim's vulnerability
trigger, and an ``oracle`` that decides from kernel evidence whether the
attacker reached their goal.

Every attack is validated by the runner to *succeed against the undefended
binary* before its blocked/bypassed verdicts mean anything.
"""

from dataclasses import dataclass, field

from repro.attacks.rop import launch_ret2libc
from repro.vm.memory import WORD


@dataclass(frozen=True)
class AttackSpec:
    """One Table 6 scenario."""

    name: str
    category: str  # Table 6 section header
    target: str  # 'nginx' | 'httpd' | 'browser' | 'mediasrv'
    description: str
    #: the paper's row: context -> can block (✓)
    expected: dict = field(default_factory=dict)
    stage: object = None  # callable(env)
    oracle: object = None  # callable(env) -> bool
    #: compile/monitor with the §11.2 filesystem extension (AOCR Attack 1
    #: abuses open/write, which are only protected under the extension)
    needs_fs_extension: bool = False
    #: extension scenarios beyond the paper's Table 6 rows (excluded from
    #: the table-matching matrix, exercised by the extended catalog)
    extra: bool = False
    refs: str = ""


CATALOG = []


def _register(**kwargs):
    spec = AttackSpec(**kwargs)
    CATALOG.append(spec)
    return spec


def attack_by_name(name):
    for spec in CATALOG:
        if spec.name == name:
            return spec
    raise KeyError(name)


def fuzz_extension(path=None):
    """The fuzz-discovered Table 6 catalog extension.

    Compiles every minimized divergence pinned in the fuzz corpus
    (``tests/fixtures/fuzz_corpus.json`` by default) into an executable
    :class:`AttackSpec`.  Kept separate from ``CATALOG`` on purpose: the
    paper-matching matrix and the security-baseline bench iterate CATALOG,
    and auto-discovered rows must never silently change those results.
    """
    from repro.fuzz.engine import load_corpus
    from repro.fuzz.genome import genome_from_dict, spec_for_genome

    specs = []
    for entry in load_corpus(path)["divergences"]:
        genome = genome_from_dict(entry["genome"])
        specs.append(spec_for_genome(genome, name=entry["name"]))
    return specs


# ---------------------------------------------------------------------------
# Return-oriented programming (§10.1; evaluated without CET)
# ---------------------------------------------------------------------------


def _stage_rop_user_command(env):
    def fire(env):
        sh = env.plant_string("/bin/sh")
        launch_ret2libc(env, [("execve", (sh, 0, 0))])

    env.on_hook("ngx_request", fire)


_register(
    name="rop_execute_user_command",
    category="Return-oriented programming (ROP)",
    target="nginx",
    description="Stack smash; ret2libc into execve('/bin/sh').",
    expected={"CT": False, "CF": True, "AI": True},
    stage=_stage_rop_user_command,
    oracle=lambda env: env.executed("/bin/sh"),
    refs="[1,3,5,7,8,11,13,15-20]",
)


def _stage_rop_root_command(env):
    def fire(env):
        sh = env.plant_string("/bin/sh")
        launch_ret2libc(env, [("setuid", (0,)), ("execve", (sh, 0, 0))])

    env.on_hook("ngx_request", fire)


_register(
    name="rop_execute_root_command",
    category="Return-oriented programming (ROP)",
    target="nginx",
    description="ROP chain: setuid(0) then execve('/bin/sh') for a root shell.",
    expected={"CT": False, "CF": True, "AI": True},
    stage=_stage_rop_root_command,
    oracle=lambda env: env.setuid_attempted(0) and env.executed("/bin/sh"),
    refs="[11]",
)


def _stage_rop_mem_perm(env):
    def fire(env):
        pools = env.global_addr("g_pools")
        pool0 = env.read(pools)  # a live RW mapping to make executable
        launch_ret2libc(env, [("mprotect", (pool0, 4096, 7))])

    env.on_hook("ngx_request", fire)


_register(
    name="rop_alter_memory_permission",
    category="Return-oriented programming (ROP)",
    target="nginx",
    description="ROP into mprotect(pool, RWX) to stage shellcode past DEP.",
    expected={"CT": False, "CF": True, "AI": True},
    stage=_stage_rop_mem_perm,
    oracle=lambda env: env.made_memory_executable(),
    refs="[2,4,6,12]",
)


# ---------------------------------------------------------------------------
# Direct system call manipulation (§10.2)
# ---------------------------------------------------------------------------


def _stage_newton_cscfi(env):
    def fire(env):
        # make the whole text segment (our 'libc') RWX: redirect the module
        # handler pointer at mprotect and groom its three arguments
        table = env.global_addr("g_handlers")
        env.write(table, env.func_addr("mprotect"))
        # the dispatch is h(r, buf, n): corrupt the locals feeding it
        env.write(env.current_local_addr("r"), 0x400000)  # text base
        env.write(env.current_local_addr("n"), 7)  # PROT_RWX

    env.on_hook("ap_run_handler", fire)


_register(
    name="newton_cscfi",
    category="Direct system call manipulation",
    target="httpd",
    description=(
        "NEWTON CsCFI: function pointer bent onto mprotect (a syscall the "
        "program never uses) to make code pages writable."
    ),
    expected={"CT": True, "CF": True, "AI": True},
    stage=_stage_newton_cscfi,
    oracle=lambda env: env.made_memory_executable(),
    refs="[93]",
)


def _stage_aocr_nginx1(env):
    def fire(env):
        shadow = env.plant_string("/etc/shadow")
        vars_base = env.global_addr("g_http_vars")
        env.write(vars_base, env.func_addr("open"))  # v[0].get_handler
        env.write(env.current_local_addr("index"), 0)
        env.write(env.current_local_addr("r"), shadow)  # open's pathname

    env.on_hook("ngx_indexed_variable_entry", fire)


_register(
    name="aocr_nginx_attack1",
    category="Direct system call manipulation",
    target="nginx",
    description=(
        "AOCR NGINX Attack 1: leverage open/write indirectly to leak the "
        "code layout (reads /etc/shadow through a bent handler pointer)."
    ),
    expected={"CT": True, "CF": True, "AI": True},
    stage=_stage_aocr_nginx1,
    oracle=lambda env: env.opened("/etc/shadow"),
    needs_fs_extension=True,
    refs="[81]",
)


def _overflow_handler(env, target_func, arg0, arg1=0, arg2=0):
    """The mediaserver heap overflow: run off g_parse_buf into g_handler."""
    buf = env.global_addr("g_parse_buf")
    handler = env.global_addr("g_handler")
    overflow_start = buf + 64 * WORD
    if overflow_start != handler:
        raise AssertionError("layout changed: overflow no longer adjacent")
    env.write(handler + env.struct_offset("frame_handler_t", "on_frame"), target_func)
    env.write(handler + env.struct_offset("frame_handler_t", "arg0"), arg0)
    env.write(handler + env.struct_offset("frame_handler_t", "arg1"), arg1)
    env.write(handler + env.struct_offset("frame_handler_t", "arg2"), arg2)


def _cve(name, description, stage, oracle, refs):
    return _register(
        name=name,
        category="Direct system call manipulation",
        target="mediasrv",
        description=description,
        expected={"CT": True, "CF": True, "AI": True},
        stage=stage,
        oracle=oracle,
        refs=refs,
    )


def _stage_cve_2016_10190(env):
    def fire(env):
        sh = env.plant_string("/bin/sh")
        _overflow_handler(env, env.func_addr("execve"), sh, 0, 0)

    env.on_hook("ms_parse_frame", fire)


_cve(
    "cve_2016_10190",
    "ffmpeg HTTP chunked-size heap overflow: callback bent onto execve.",
    _stage_cve_2016_10190,
    lambda env: env.executed("/bin/sh"),
    "[75]",
)


def _stage_cve_2016_10191(env):
    def fire(env):
        sh = env.plant_string("/bin/sh")
        _overflow_handler(env, env.func_addr("execveat"), 0, sh, 0)

    env.on_hook("ms_parse_frame", fire)


_cve(
    "cve_2016_10191",
    "ffmpeg RTMP packet overflow: callback bent onto execveat (never used).",
    _stage_cve_2016_10191,
    lambda env: env.executed("/bin/sh"),
    "[76]",
)


def _stage_cve_2015_8617(env):
    def fire(env):
        passwd = env.plant_string("/etc/passwd")
        _overflow_handler(env, env.func_addr("chmod"), passwd, 0o777, 0)

    env.on_hook("ms_parse_frame", fire)


_cve(
    "cve_2015_8617",
    "PHP format-string: pointer bent onto chmod('/etc/passwd', 0777).",
    _stage_cve_2015_8617,
    lambda env: env.chmod_attempted("/etc/passwd"),
    "[74]",
)


def _stage_cve_2012_0809(env):
    def fire(env):
        _overflow_handler(env, env.func_addr("setuid"), 0, 0, 0)

    env.on_hook("ms_parse_frame", fire)


_cve(
    "cve_2012_0809",
    "sudo format-string: pointer bent onto setuid(0) (used direct-only).",
    _stage_cve_2012_0809,
    lambda env: env.setuid_attempted(0),
    "[70]",
)


def _stage_cve_2013_2028(env):
    def fire(env):
        # nginx chunked-encoding overflow: bend the (already-loaded) output
        # filter pointer onto mprotect; its two call args cover addr/len,
        # and the third argument register is groomed on the stale stack
        # slot that will become the wrapper's prot parameter.
        env.write(env.current_local_addr("flt"), env.func_addr("mprotect"))
        pools = env.global_addr("g_pools")
        pool0 = env.read(pools)
        env.write(env.current_local_addr("fctx"), pool0)  # mprotect addr
        env.write(env.current_local_addr("in_"), 4096)  # mprotect len
        wrapper_fp = env.cpu.sp - 2 * WORD
        env.write(wrapper_fp - 3 * WORD, 7)  # prot = PROT_RWX

    env.on_hook("ngx_output_chain_icall", fire)


_register(
    name="cve_2013_2028",
    category="Direct system call manipulation",
    target="nginx",
    description="nginx chunked overflow: ctx->output_filter bent onto mprotect(RWX).",
    expected={"CT": True, "CF": True, "AI": True},
    stage=_stage_cve_2013_2028,
    oracle=lambda env: env.made_memory_executable(),
    refs="[71]",
)


def _stage_cve_2014_8668(env):
    def fire(env):
        pool = env.read(env.global_addr("g_frame_pool"))
        _overflow_handler(env, env.func_addr("mremap"), pool, 4096, 1 << 20)

    env.on_hook("ms_parse_frame", fire)


_cve(
    "cve_2014_8668",
    "libtiff BMP overflow: pointer bent onto mremap (never used).",
    _stage_cve_2014_8668,
    lambda env: env.mremap_attempted(),
    "[73]",
)


def _stage_cve_2014_1912(env):
    def fire(env):
        sockaddr = env.plant_words([2, 4444, 0x7F000001])
        _overflow_handler(env, env.func_addr("connect"), 3, sockaddr, 16)

    env.on_hook("ms_parse_frame", fire)


_cve(
    "cve_2014_1912",
    "python recvfrom_into overflow: pointer bent onto connect(:4444) (C2).",
    _stage_cve_2014_1912,
    lambda env: env.connected_to(4444),
    "[72]",
)


# ---------------------------------------------------------------------------
# Indirect system call manipulation (§10.3)
# ---------------------------------------------------------------------------


def _stage_newton_cpi(env):
    def fire(env):
        # No code/data pointer is corrupted in place: the attacker sprays a
        # counterfeit ngx_http_variable_t entry and bends only the *index*
        # so v[index] lands on it; the callsite's own argument variables
        # supply mprotect's addr/len/prot.
        vars_base = env.global_addr("g_http_vars")
        # land the counterfeit entry on an exact v[index] stride so only the
        # integer index needs corrupting
        stride = 3 * WORD
        k = (env._scratch_next - vars_base) // stride + 1
        entry = vars_base + k * stride
        env.write(entry, env.func_addr("mprotect"))
        env.write(entry + WORD, 7)  # v[index].data -> PROT_RWX
        env.write(entry + 2 * WORD, 0)
        env._scratch_next = entry + 4 * WORD
        index = k
        env.write(env.current_local_addr("index"), index)
        pools = env.global_addr("g_pools")
        pool0 = env.read(pools)
        env.write(env.current_local_addr("r"), pool0)  # mprotect addr

    env.on_hook("ngx_indexed_variable_entry", fire)


_register(
    name="newton_cpi",
    category="Indirect system call manipulation",
    target="nginx",
    description=(
        "NEWTON CPI: out-of-bounds v[index].get_handler dispatch onto "
        "mprotect with attacker-controlled non-pointer arguments "
        "(Listing 2)."
    ),
    expected={"CT": True, "CF": True, "AI": True},
    stage=_stage_newton_cpi,
    oracle=lambda env: env.made_memory_executable(),
    refs="[93]",
)


def _stage_aocr_apache(env):
    def fire(env):
        sh = env.plant_string("/bin/sh")
        table = env.global_addr("g_handlers")
        env.write(table, env.func_addr("ap_get_exec_line"))
        line_slot = env.global_addr("g_cmd_ctx") + env.struct_offset(
            "cmd_ctx_t", "line"
        )
        env.write(line_slot, sh)

    env.on_hook("ap_run_handler", fire)


_register(
    name="aocr_apache",
    category="Indirect system call manipulation",
    target="httpd",
    description=(
        "AOCR Apache: hijack a handler pointer onto ap_get_exec_line "
        "(same C type, so coarse CFI passes); exec is legitimately "
        "indirect elsewhere, so call-type passes too."
    ),
    expected={"CT": False, "CF": True, "AI": True},
    stage=_stage_aocr_apache,
    oracle=lambda env: env.executed("/bin/sh"),
    refs="[93]",
)


def _stage_aocr_nginx2(env):
    def fire(env):
        # Data-only: flip the master-loop upgrade flag and swap the exec
        # context's path — control flow stays entirely legitimate.
        sh = env.plant_string("/bin/sh")
        env.write(env.global_addr("g_upgrade_flag"), 1)
        path_slot = env.global_addr("g_exec_ctx") + env.struct_offset(
            "ngx_exec_ctx_t", "path"
        )
        env.write(path_slot, sh)

    env.on_hook("ngx_master_cycle", fire)


_register(
    name="aocr_nginx_attack2",
    category="Indirect system call manipulation",
    target="nginx",
    description=(
        "AOCR NGINX Attack 2: corrupt only globals so the master loop "
        "itself calls exec with attacker parameters."
    ),
    expected={"CT": False, "CF": False, "AI": True},
    stage=_stage_aocr_nginx2,
    oracle=lambda env: env.executed("/bin/sh"),
    refs="[81]",
)


def _stage_coop(env):
    def fire(env):
        # Counterfeit object-oriented programming: spray a fake object whose
        # vptr points *into* a legitimate vtable (off by one slot) so the
        # benign render dispatch becomes renderer_spawn('/bin/sh').
        sh = env.plant_string("/bin/sh")
        vt = env.global_addr("g_vt_document")
        counterfeit = env.plant_words([vt + WORD, sh, 0])
        env.write(env.current_local_addr("obj"), counterfeit)

    env.on_hook("browser_event", fire)


_register(
    name="coop_chrome",
    category="Indirect system call manipulation",
    target="browser",
    description=(
        "COOP: counterfeit objects chained through legitimate virtual "
        "callsites; every dispatch is type-correct for CFI."
    ),
    expected={"CT": False, "CF": False, "AI": True},
    stage=_stage_coop,
    oracle=lambda env: env.executed("/bin/sh"),
    refs="[34]",
)


def _stage_control_jujutsu(env):
    def fire(env):
        # Full-function reuse: redirect the (argument-corruptible) indirect
        # callsite in ngx_output_chain onto ngx_execute_proc with a
        # counterfeit ngx_exec_ctx_t (Listing 1's attack).
        sh = env.plant_string("/bin/sh")
        argv = env.plant_words([sh, 0])
        ctx = env.plant_words([sh, argv, 0])
        env.write(env.current_local_addr("flt"), env.func_addr("ngx_execute_proc"))
        # output_filter(filter_ctx, in): the counterfeit exec context must
        # arrive in ngx_execute_proc's `data` parameter (the second slot)
        env.write(env.current_local_addr("in_"), ctx)

    env.on_hook("ngx_output_chain_icall", fire)


_register(
    name="control_jujutsu",
    category="Indirect system call manipulation",
    target="nginx",
    description=(
        "Control Jujutsu: ctx->output_filter redirected to "
        "ngx_execute_proc (address-taken, type-compatible) with a "
        "counterfeit exec context."
    ),
    expected={"CT": False, "CF": False, "AI": True},
    stage=_stage_control_jujutsu,
    oracle=lambda env: env.executed("/bin/sh"),
    refs="[38]",
)


# ---------------------------------------------------------------------------
# Extension scenarios beyond the paper's Table 6 (marked extra=True)
# ---------------------------------------------------------------------------


def _stage_rop_mmap_rwx(env):
    def fire(env):
        launch_ret2libc(env, [("mmap", (0, 8192, 7, 0x22, -1, 0))])

    env.on_hook("ngx_request", fire)


_register(
    name="rop_mmap_rwx",
    category="Return-oriented programming (ROP)",
    target="nginx",
    description="ROP into mmap(PROT_RWX) for a fresh writable+executable page.",
    expected={"CT": False, "CF": True, "AI": True},
    stage=_stage_rop_mmap_rwx,
    oracle=lambda env: env.made_memory_executable(),
    extra=True,
)


def _stage_rop_chmod(env):
    def fire(env):
        passwd = env.plant_string("/etc/passwd")
        launch_ret2libc(env, [("chmod", (passwd, 0o777))])

    env.on_hook("ngx_request", fire)


_register(
    name="rop_chmod_unused_syscall",
    category="Return-oriented programming (ROP)",
    target="nginx",
    description=(
        "ROP into chmod('/etc/passwd', 0777): NGINX never uses chmod, so "
        "unlike the paper's ROP rows the call-type context (seccomp KILL) "
        "stops even the ROP variant."
    ),
    expected={"CT": True, "CF": True, "AI": True},
    stage=_stage_rop_chmod,
    oracle=lambda env: env.chmod_attempted("/etc/passwd"),
    extra=True,
)


def _stage_ret2system(env):
    def fire(env):
        sh = env.plant_string("/bin/sh")
        launch_ret2libc(env, [("system", (sh,))])

    env.on_hook("ngx_request", fire)


_register(
    name="ret2system",
    category="Return-oriented programming (ROP)",
    target="nginx",
    description=(
        "Classic ret2libc into system('/bin/sh').  Documents a known "
        "limitation (DESIGN.md): entering system() at its entry point runs "
        "its own instrumentation, laundering the attacker's argument into "
        "the shadow copies — AI alone does not fire; the control-flow "
        "context (stack bottoming out in system, not main) catches it."
    ),
    expected={"CT": False, "CF": True, "AI": False},
    stage=_stage_ret2system,
    oracle=lambda env: "/bin/sh" in env.execve_paths()
    or any(e.details.get("child_pid") for e in env.events("fork")),
    extra=True,
)
