"""Attack evaluation harness: regenerates Table 6.

For every catalog entry:

1. run against the **undefended** binary (CET off, per §10.1's "defend ROP
   in the absence of CET") — the exploit must reach its goal, otherwise the
   scenario is broken and no blocked-verdict means anything;
2. run under each context **alone** (CT / CF / AI) — a kill before the goal
   is that context's ✓;
3. run under **full BASTION** — every Table 6 attack must be blocked.

The same entry points drive the coverage-guided fuzzer (`repro.fuzz`),
which needs programmatic target construction (:data:`TARGETS`), normalized
blocking attribution (:class:`BlockingContext`), and scheduler-independent
outcomes (``run_attack(quantum=...)``).
"""

import enum
from dataclasses import dataclass, field

from repro.apps.browser import BrowserConfig, build_browser
from repro.apps.httpd import HTDOCS, HTTPD_PORT, HttpdConfig, build_httpd
from repro.apps.mediasrv import MEDIA_FILE, MediaConfig, build_mediasrv
from repro.apps.nginx import NginxConfig, build_nginx
from repro.apps.workloads import SimpleServerWorkload, WrkWorkload
from repro.attacks.catalog import CATALOG
from repro.attacks.primitives import AttackEnv
from repro.compiler.pipeline import BastionCompiler
from repro.kernel.kernel import Kernel
from repro.monitor.monitor import BastionMonitor
from repro.monitor.policy import ContextPolicy
from repro.vm.cpu import CPU, CPUOptions
from repro.vm.loader import Image


class BlockingContext(str, enum.Enum):
    """The closed set of contexts an attack can be attributed to.

    The first three are BASTION's §3 contexts (a monitor
    ``Violation.context``); ``SECCOMP`` is the in-kernel KILL of a
    not-callable syscall — the coarse half of call-type protection (§3.1)
    when BASTION compiled the filter, or a plain allowlist verdict for the
    filtering baselines; ``BINARY_CALLTYPE`` is the binary-only mechanism's
    recovered call-kind check; ``SFIP`` is the syscall-flow-integrity
    state machine (either variant: an illegal transition or a wrong
    origin); ``LLVM_CFI``/``CET`` are the hardware and
    compiler baselines; ``FAULT`` marks runs ended by an injected
    dispatch-time fault rather than a security verdict (`repro.fuzz`).
    """

    CALL_TYPE = "call-type"
    CONTROL_FLOW = "control-flow"
    ARG_INTEGRITY = "arg-integrity"
    SECCOMP = "seccomp"
    BINARY_CALLTYPE = "binary-calltype"
    SFIP = "sfip"
    LLVM_CFI = "llvm-cfi"
    CET = "cet"
    FAULT = "fault"

    # format as the wire value ("seccomp"), not "BlockingContext.SECCOMP"
    __str__ = str.__str__
    __format__ = str.__format__


_SHELL = ("/bin/sh", b"\x7fELF-shell", 0o755)


@dataclass(frozen=True)
class AttackTarget:
    """One attackable application: build recipe, filesystem env, workload.

    Replaces the per-app ``_nginx_env``/``_httpd_env``/... builders with a
    single declarative registry so the fuzzer (and any future harness) can
    construct every target the same way.
    """

    name: str
    build: object  # () -> module
    workload: object = None  # () -> workload, or None for self-driving apps
    env_dirs: tuple = ()
    env_files: tuple = ()  # (path, bytes, mode) triples
    env_base: object = None  # shared bench-harness env applied first

    def prepare_env(self, kernel):
        if self.env_base is not None:
            self.env_base(kernel)
        for path in self.env_dirs:
            kernel.vfs.makedirs(path)
        for path, data, mode in self.env_files:
            kernel.vfs.write_file(path, data, mode=mode)

    def attach_workload(self, kernel, proc):
        if self.workload is not None:
            self.workload().attach(kernel, proc)


def _bench_nginx_env(kernel):
    from repro.bench.harness import _setup_nginx_env

    _setup_nginx_env(kernel)


TARGETS = {
    "nginx": AttackTarget(
        name="nginx",
        build=lambda: build_nginx(NginxConfig(workers=2, pools=4, guards=3)),
        workload=lambda: WrkWorkload(connections=2, requests_per_connection=3),
        env_base=_bench_nginx_env,
        env_dirs=("/etc",),
        env_files=(
            ("/etc/shadow", b"root:$6$secret\n", 0o600),
            ("/etc/passwd", b"root:x:0:0\n", 0o644),
        ),
    ),
    "httpd": AttackTarget(
        name="httpd",
        build=lambda: build_httpd(HttpdConfig()),
        workload=lambda: SimpleServerWorkload(
            HTTPD_PORT, connections=2, requests=2, response_threshold=100
        ),
        env_dirs=("/bin", "/var/apache/htdocs", "/usr/lib/cgi-bin", "/etc"),
        env_files=(
            (HTDOCS, b"<html>apache</html>" + b"x" * 480, 0o644),
            ("/usr/lib/cgi-bin/rotatelogs", b"\x7fELF", 0o755),
            ("/etc/passwd", b"root:x:0:0\n", 0o644),
            _SHELL,
        ),
    ),
    "browser": AttackTarget(
        name="browser",
        build=lambda: build_browser(BrowserConfig(events=6)),
        env_dirs=("/bin", "/opt/browser", "/etc"),
        env_files=(
            ("/opt/browser/renderer", b"\x7fELF", 0o755),
            ("/etc/passwd", b"root:x:0:0\n", 0o644),
            _SHELL,
        ),
    ),
    "mediasrv": AttackTarget(
        name="mediasrv",
        build=lambda: build_mediasrv(MediaConfig(frames=4)),
        env_dirs=("/bin", "/srv/media", "/etc"),
        env_files=(
            (MEDIA_FILE, b"\x47" * 4096, 0o644),
            ("/etc/passwd", b"root:x:0:0\n", 0o644),
            _SHELL,
        ),
    ),
}


def attack_target(name):
    """The :class:`AttackTarget` registry entry for ``name``."""
    return TARGETS[name]


def target_names():
    return tuple(sorted(TARGETS))


_module_cache = {}
_artifact_cache = {}


def _target_module(target):
    if target not in _module_cache:
        _module_cache[target] = TARGETS[target].build()
    return _module_cache[target]


def _target_artifact(target, extend_filesystem):
    key = (target, extend_filesystem)
    if key not in _artifact_cache:
        _artifact_cache[key] = BastionCompiler(
            extend_filesystem=extend_filesystem
        ).compile(_target_module(target))
    return _artifact_cache[key]


@dataclass
class AttackOutcome:
    """Result of one (attack, defense) run."""

    attack: str
    defense: str
    status: object
    succeeded: bool = False
    blocked: bool = False
    blocked_by: BlockingContext = None
    violations: list = field(default_factory=list)
    #: telemetry snapshot for the fuzz coverage signature: attributed
    #: dispatch-stage cycles (incl. verify.* sub-stages) and the process
    #: tree's per-syscall counts
    stage_cycles: dict = field(default_factory=dict)
    syscall_counts: dict = field(default_factory=dict)

    def __str__(self):
        verdict = "SUCCEEDED" if self.succeeded else (
            "blocked by %s" % self.blocked_by if self.blocked else "fizzled"
        )
        return "%s under %s: %s" % (self.attack, self.defense, verdict)


def _tree_kill_reason(proc):
    """The first security kill reason in ``proc``'s subtree.

    Under the preemptive scheduler the poisoned request may be served by
    a forked worker: the kill then lands on the child while the master
    exits cleanly.  The attack verdict belongs to the tree, so walk it
    (pid order — deterministic) and surface whichever process was killed.
    """
    queue = [proc]
    while queue:
        p = queue.pop(0)
        if p.kill_reason:
            return p.kill_reason
        queue.extend(sorted(p.children, key=lambda c: c.pid))
    return ""


def classify_blocking(monitor, proc, status):
    """Map one run's evidence onto the closed :class:`BlockingContext` set.

    Returns ``(context, violations)`` — ``(None, [])`` when nothing
    security-relevant stopped the process.
    """
    if monitor is not None and monitor.violations:
        return (
            BlockingContext(monitor.violations[0].context),
            list(monitor.violations),
        )
    reason = _tree_kill_reason(proc)
    if reason.startswith("seccomp"):
        return BlockingContext.SECCOMP, []
    if reason.startswith("binary-calltype"):
        return BlockingContext.BINARY_CALLTYPE, []
    if reason.startswith("sfip"):
        # both variants: "sfip: ..." and "sfip-origin: ..." kill reasons
        return BlockingContext.SFIP, []
    if status is not None and status.kind == "fault":
        if "CFIFault" in (status.reason or ""):
            return BlockingContext.LLVM_CFI, []
        if "ShadowStackFault" in (status.reason or ""):
            return BlockingContext.CET, []
    return None, []


def run_attack(
    spec,
    policy=None,
    defense_name=None,
    cpu_options=None,
    defense=None,
    quantum=None,
):
    """Run one attack under ``policy`` (None = undefended).

    CET is disabled by default: the Table 6 study evaluates BASTION's
    contexts on their own (§10.1 explicitly covers the no-CET case).  Pass
    explicit ``cpu_options`` to arm hardware/compiler baselines instead
    (``CPUOptions(llvm_cfi=True)``, ``CPUOptions(cet=True)``), or a
    ``defense`` DefenseConfig to launch through a registered
    :class:`~repro.mechanisms.ProtectionMechanism` (the seccomp-allowlist
    and binary-only baselines reach the attack study this way).

    ``quantum`` switches the run onto the preemptive scheduler with that
    cycle quantum; verdicts are quantum-independent (the fuzz oracle's
    determinism rests on this, see tests/attacks/test_scheduled.py).
    """
    target = TARGETS[spec.target]
    kernel = Kernel()
    target.prepare_env(kernel)
    options = cpu_options or CPUOptions(cet=False)

    monitor = None
    if policy is not None:
        artifact = _target_artifact(spec.target, spec.needs_fs_extension)
        monitor = BastionMonitor(artifact, policy=policy)
        proc, cpu = monitor.launch(kernel, cpu_options=options)
    elif defense is not None:
        mechanism = defense.mechanism()
        proc, cpu = mechanism.launch(
            kernel, spec.target, _target_module(spec.target)
        )
    else:
        image = Image(_target_module(spec.target))
        proc = kernel.create_process(spec.target, image)
        cpu = CPU(image, proc, kernel, options)

    env = AttackEnv(kernel=kernel, proc=proc, cpu=cpu, image=cpu.image, monitor=monitor)
    spec.stage(env)

    target.attach_workload(kernel, proc)

    if quantum is None:
        status = cpu.run()
    else:
        from repro.sched import Scheduler

        sched = Scheduler(kernel, quantum=quantum)
        sched.add(proc, cpu)
        status = sched.run()[proc.pid]

    outcome = AttackOutcome(
        attack=spec.name,
        defense=defense_name or (policy.label() if policy else "none"),
        status=status,
        succeeded=spec.oracle(env),
        stage_cycles=kernel.telemetry.stage_cycles(),
        syscall_counts=dict(proc.syscall_counts),
    )
    blocked_by, violations = classify_blocking(monitor, proc, status)
    if blocked_by is not None:
        outcome.blocked = True
        outcome.blocked_by = blocked_by
        outcome.violations = violations
    # A defense that fires only *after* the attacker reached their goal did
    # not block the attack (e.g. an incidental fault on a later dispatch).
    if outcome.succeeded and outcome.blocked:
        outcome.blocked = False
        outcome.blocked_by = None
    return outcome


_CONTEXT_POLICIES = {
    "CT": ContextPolicy.ct_only(),
    "CF": ContextPolicy.cf_only(),
    "AI": ContextPolicy.ai_only(),
}


@dataclass
class AttackEvaluation:
    """One Table 6 row: per-context verdicts plus validation runs."""

    spec: object
    unprotected: AttackOutcome = None
    by_context: dict = field(default_factory=dict)  # 'CT'/'CF'/'AI' -> Outcome
    full: AttackOutcome = None

    @property
    def valid(self):
        """The exploit really works when undefended."""
        return self.unprotected is not None and self.unprotected.succeeded

    def blocks(self, context):
        outcome = self.by_context.get(context)
        return bool(outcome and outcome.blocked and not outcome.succeeded)

    def matches_paper(self):
        """Do our ✓/× verdicts match the paper's Table 6 row?"""
        return all(
            self.blocks(ctx) == expected
            for ctx, expected in self.spec.expected.items()
        )

    @property
    def blocked_by_full(self):
        return bool(self.full and self.full.blocked and not self.full.succeeded)


def evaluate_attack(spec, policy_transform=None):
    """Run the full Table 6 protocol for one attack.

    ``policy_transform`` maps each defense policy before use, e.g.
    ``lambda p: p.without("cache")`` to evaluate the catalog with the
    monitor fast path disabled (the defaults run with caching on, so the
    standard matrix doubles as the cache's soundness check).
    """
    transform = policy_transform or (lambda policy: policy)
    evaluation = AttackEvaluation(spec=spec)
    evaluation.unprotected = run_attack(spec, None, "none")
    for context, policy in _CONTEXT_POLICIES.items():
        evaluation.by_context[context] = run_attack(spec, transform(policy), context)
    evaluation.full = run_attack(spec, transform(ContextPolicy.full()), "full")
    return evaluation


def table6_matrix(catalog=None, include_extra=False, policy_transform=None):
    """Evaluate the Table 6 attacks; returns ``[AttackEvaluation, ...]``.

    ``include_extra`` adds the extension scenarios beyond the paper's rows;
    ``policy_transform`` is forwarded to :func:`evaluate_attack`.
    """
    specs = catalog if catalog is not None else [
        spec for spec in CATALOG if include_extra or not spec.extra
    ]
    return [evaluate_attack(spec, policy_transform=policy_transform) for spec in specs]
