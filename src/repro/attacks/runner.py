"""Attack evaluation harness: regenerates Table 6.

For every catalog entry:

1. run against the **undefended** binary (CET off, per §10.1's "defend ROP
   in the absence of CET") — the exploit must reach its goal, otherwise the
   scenario is broken and no blocked-verdict means anything;
2. run under each context **alone** (CT / CF / AI) — a kill before the goal
   is that context's ✓;
3. run under **full BASTION** — every Table 6 attack must be blocked.
"""

from dataclasses import dataclass, field

from repro.apps.browser import BrowserConfig, build_browser
from repro.apps.httpd import HTDOCS, HTTPD_PORT, HttpdConfig, build_httpd
from repro.apps.mediasrv import MEDIA_FILE, MediaConfig, build_mediasrv
from repro.apps.nginx import NginxConfig, build_nginx
from repro.apps.workloads import SimpleServerWorkload, WrkWorkload
from repro.attacks.catalog import CATALOG
from repro.attacks.primitives import AttackEnv
from repro.compiler.pipeline import BastionCompiler
from repro.kernel.kernel import Kernel
from repro.monitor.monitor import BastionMonitor
from repro.monitor.policy import ContextPolicy
from repro.vm.cpu import CPU, CPUOptions
from repro.vm.loader import Image


def _nginx_env(kernel):
    from repro.bench.harness import _setup_nginx_env

    _setup_nginx_env(kernel)
    kernel.vfs.makedirs("/etc")
    kernel.vfs.write_file("/etc/shadow", b"root:$6$secret\n", mode=0o600)
    kernel.vfs.write_file("/etc/passwd", b"root:x:0:0\n")


def _httpd_env(kernel):
    kernel.vfs.makedirs("/bin")
    kernel.vfs.makedirs("/var/apache/htdocs")
    kernel.vfs.makedirs("/usr/lib/cgi-bin")
    kernel.vfs.write_file(HTDOCS, b"<html>apache</html>" + b"x" * 480)
    kernel.vfs.write_file("/usr/lib/cgi-bin/rotatelogs", b"\x7fELF", mode=0o755)
    kernel.vfs.write_file("/bin/sh", b"\x7fELF-shell", mode=0o755)


def _browser_env(kernel):
    kernel.vfs.makedirs("/bin")
    kernel.vfs.makedirs("/opt/browser")
    kernel.vfs.write_file("/opt/browser/renderer", b"\x7fELF", mode=0o755)
    kernel.vfs.write_file("/bin/sh", b"\x7fELF-shell", mode=0o755)


def _mediasrv_env(kernel):
    kernel.vfs.makedirs("/bin")
    kernel.vfs.makedirs("/srv/media")
    kernel.vfs.makedirs("/etc")
    kernel.vfs.write_file(MEDIA_FILE, b"\x47" * 4096)
    kernel.vfs.write_file("/etc/passwd", b"root:x:0:0\n")
    kernel.vfs.write_file("/bin/sh", b"\x7fELF-shell", mode=0o755)


_TARGETS = {
    "nginx": {
        "build": lambda: build_nginx(NginxConfig(workers=2, pools=4, guards=3)),
        "env": _nginx_env,
        "workload": lambda: WrkWorkload(connections=2, requests_per_connection=3),
    },
    "httpd": {
        "build": lambda: build_httpd(HttpdConfig()),
        "env": _httpd_env,
        "workload": lambda: SimpleServerWorkload(
            HTTPD_PORT, connections=2, requests=2, response_threshold=100
        ),
    },
    "browser": {
        "build": lambda: build_browser(BrowserConfig(events=6)),
        "env": _browser_env,
        "workload": None,
    },
    "mediasrv": {
        "build": lambda: build_mediasrv(MediaConfig(frames=4)),
        "env": _mediasrv_env,
        "workload": None,
    },
}

_module_cache = {}
_artifact_cache = {}


def _target_module(target):
    if target not in _module_cache:
        _module_cache[target] = _TARGETS[target]["build"]()
    return _module_cache[target]


def _target_artifact(target, extend_filesystem):
    key = (target, extend_filesystem)
    if key not in _artifact_cache:
        _artifact_cache[key] = BastionCompiler(
            extend_filesystem=extend_filesystem
        ).compile(_target_module(target))
    return _artifact_cache[key]


@dataclass
class AttackOutcome:
    """Result of one (attack, defense) run."""

    attack: str
    defense: str
    status: object
    succeeded: bool = False
    blocked: bool = False
    blocked_by: str = None  # 'call-type' | 'control-flow' | 'arg-integrity'
    violations: list = field(default_factory=list)

    def __str__(self):
        verdict = "SUCCEEDED" if self.succeeded else (
            "blocked by %s" % self.blocked_by if self.blocked else "fizzled"
        )
        return "%s under %s: %s" % (self.attack, self.defense, verdict)


def run_attack(spec, policy=None, defense_name=None, cpu_options=None, defense=None):
    """Run one attack under ``policy`` (None = undefended).

    CET is disabled by default: the Table 6 study evaluates BASTION's
    contexts on their own (§10.1 explicitly covers the no-CET case).  Pass
    explicit ``cpu_options`` to arm hardware/compiler baselines instead
    (``CPUOptions(llvm_cfi=True)``, ``CPUOptions(cet=True)``), or a
    ``defense`` DefenseConfig to launch through a registered
    :class:`~repro.mechanisms.ProtectionMechanism` (the seccomp-allowlist
    and binary-only baselines reach the attack study this way).
    """
    target = _TARGETS[spec.target]
    kernel = Kernel()
    target["env"](kernel)
    options = cpu_options or CPUOptions(cet=False)

    monitor = None
    if policy is not None:
        artifact = _target_artifact(spec.target, spec.needs_fs_extension)
        monitor = BastionMonitor(artifact, policy=policy)
        proc, cpu = monitor.launch(kernel, cpu_options=options)
    elif defense is not None:
        mechanism = defense.mechanism()
        proc, cpu = mechanism.launch(
            kernel, spec.target, _target_module(spec.target)
        )
    else:
        image = Image(_target_module(spec.target))
        proc = kernel.create_process(spec.target, image)
        cpu = CPU(image, proc, kernel, options)

    env = AttackEnv(kernel=kernel, proc=proc, cpu=cpu, image=cpu.image, monitor=monitor)
    spec.stage(env)

    workload_factory = target["workload"]
    if workload_factory is not None:
        workload_factory().attach(kernel, proc)

    status = cpu.run()

    outcome = AttackOutcome(
        attack=spec.name,
        defense=defense_name or (policy.label() if policy else "none"),
        status=status,
        succeeded=spec.oracle(env),
    )
    if monitor is not None and monitor.violations:
        outcome.blocked = True
        outcome.blocked_by = monitor.violations[0].context
        outcome.violations = list(monitor.violations)
    elif proc.kill_reason and proc.kill_reason.startswith("seccomp"):
        # the seccomp KILL of a not-callable syscall IS the call-type
        # context's coarse half (§3.1)
        outcome.blocked = True
        outcome.blocked_by = "call-type"
    elif proc.kill_reason and proc.kill_reason.startswith("binary-calltype"):
        # the binary-only mechanism's recovered call-type check
        outcome.blocked = True
        outcome.blocked_by = "call-type"
    elif status.kind == "fault" and "CFIFault" in status.reason:
        outcome.blocked = True
        outcome.blocked_by = "llvm-cfi"
    elif status.kind == "fault" and "ShadowStackFault" in status.reason:
        outcome.blocked = True
        outcome.blocked_by = "cet"
    # A defense that fires only *after* the attacker reached their goal did
    # not block the attack (e.g. an incidental fault on a later dispatch).
    if outcome.succeeded and outcome.blocked:
        outcome.blocked = False
        outcome.blocked_by = None
    return outcome


_CONTEXT_POLICIES = {
    "CT": ContextPolicy.ct_only(),
    "CF": ContextPolicy.cf_only(),
    "AI": ContextPolicy.ai_only(),
}


@dataclass
class AttackEvaluation:
    """One Table 6 row: per-context verdicts plus validation runs."""

    spec: object
    unprotected: AttackOutcome = None
    by_context: dict = field(default_factory=dict)  # 'CT'/'CF'/'AI' -> Outcome
    full: AttackOutcome = None

    @property
    def valid(self):
        """The exploit really works when undefended."""
        return self.unprotected is not None and self.unprotected.succeeded

    def blocks(self, context):
        outcome = self.by_context.get(context)
        return bool(outcome and outcome.blocked and not outcome.succeeded)

    def matches_paper(self):
        """Do our ✓/× verdicts match the paper's Table 6 row?"""
        return all(
            self.blocks(ctx) == expected
            for ctx, expected in self.spec.expected.items()
        )

    @property
    def blocked_by_full(self):
        return bool(self.full and self.full.blocked and not self.full.succeeded)


def evaluate_attack(spec, policy_transform=None):
    """Run the full Table 6 protocol for one attack.

    ``policy_transform`` maps each defense policy before use, e.g.
    ``lambda p: p.without("cache")`` to evaluate the catalog with the
    monitor fast path disabled (the defaults run with caching on, so the
    standard matrix doubles as the cache's soundness check).
    """
    transform = policy_transform or (lambda policy: policy)
    evaluation = AttackEvaluation(spec=spec)
    evaluation.unprotected = run_attack(spec, None, "none")
    for context, policy in _CONTEXT_POLICIES.items():
        evaluation.by_context[context] = run_attack(spec, transform(policy), context)
    evaluation.full = run_attack(spec, transform(ContextPolicy.full()), "full")
    return evaluation


def table6_matrix(catalog=None, include_extra=False, policy_transform=None):
    """Evaluate the Table 6 attacks; returns ``[AttackEvaluation, ...]``.

    ``include_extra`` adds the extension scenarios beyond the paper's rows;
    ``policy_transform`` is forwarded to :func:`evaluate_attack`.
    """
    specs = catalog if catalog is not None else [
        spec for spec in CATALOG if include_extra or not spec.extra
    ]
    return [evaluate_attack(spec, policy_transform=policy_transform) for spec in specs]
