"""Exception hierarchy shared across the repro package."""


class ReproError(Exception):
    """Base class for every error raised by this package."""


class IRError(ReproError):
    """Malformed IR: unknown operand, bad label, duplicate function, ..."""


class IRValidationError(IRError):
    """Raised by the IR validator when a module breaks a structural rule."""


class LoaderError(ReproError):
    """Raised when a module cannot be laid out into an executable image."""


class VMFault(ReproError):
    """A hardware-style fault raised by the interpreter CPU.

    Subclasses mirror the processor/OS events the paper's threat model
    relies on (DEP faults, shadow-stack mismatches, bad fetches).
    """

    def __init__(self, message, rip=None):
        super().__init__(message)
        self.rip = rip


class SegmentationFault(VMFault):
    """Access to unmapped memory or a permission violation."""


class ExecutionFault(VMFault):
    """Instruction fetch from a non-executable address (DEP/NX)."""


class ShadowStackFault(VMFault):
    """CET shadow-stack mismatch on return (control-protection fault)."""


class CFIFault(VMFault):
    """LLVM-CFI equivalence-class violation at an indirect callsite."""


class DFIFault(VMFault):
    """Data-flow-integrity violation (baseline defense)."""


class ProcessKilled(ReproError):
    """The process was terminated (seccomp KILL, monitor verdict, signal)."""

    def __init__(self, message, reason=None):
        super().__init__(message)
        self.reason = reason


class WouldBlock(ReproError):
    """A syscall cannot complete yet; the scheduler should park the process.

    Raised by the kernel dispatcher *before* seccomp runs (so a restarted
    syscall stops into the monitor exactly once, when it can complete) and
    only while a :class:`repro.sched.Scheduler` is driving the kernel.  The
    CPU leaves ``rip`` on the syscall instruction, ERESTARTSYS-style: the
    syscall re-executes when the wake predicate turns true.
    """

    def __init__(self, kind, wake, detail=""):
        super().__init__("%s would block%s" % (kind, ": " + detail if detail else ""))
        #: what the process waits on: 'accept' | 'read' | 'child'
        self.kind = kind
        #: zero-argument predicate: True once the syscall can make progress
        self.wake = wake
        self.detail = detail


class KernelError(ReproError):
    """Internal kernel invariant violation (a bug in the simulation)."""


class CompilerError(ReproError):
    """BASTION compiler pass failure (analysis or instrumentation)."""


class MonitorError(ReproError):
    """BASTION monitor misconfiguration (bad metadata, missing tracee)."""


class AttackError(ReproError):
    """An attack script could not even be staged (target symbol missing)."""
