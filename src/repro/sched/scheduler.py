"""A deterministic preemptive round-robin scheduler over Process PCBs.

The seed ran clone()d children "cooperative and sequential" — the parent
stopped while each child ran to completion — so a multi-worker server
served exactly one connection at a time.  This module timeslices one
simulated CPU across every runnable process by **cycle quantum**:

- the run queue holds :class:`Task` objects (a PCB plus its interpreter
  CPU); each pick runs at most ``quantum`` cycles before being preempted
  back to the tail;
- ``accept``/``read``/``wait4`` **block**: the kernel raises
  :class:`~repro.errors.WouldBlock` (before seccomp, so the monitor sees
  each syscall stop exactly once) and the scheduler parks the task until
  its wake predicate — backlog non-empty, data arrived, child exited —
  turns true;
- ``fork``/``clone`` **enqueue** the child instead of running it inline;
  stacks come from the collision-checked
  :class:`~repro.sched.stackalloc.StackSlotAllocator` and are released on
  exit;
- a **global cycle clock** (:meth:`Scheduler.now`) advances with whichever
  task is running, giving workloads a single timeline for per-request
  latency measurements.

Everything is deterministic: the queue order, the wake scan order, and the
clock are pure functions of simulated state, so a run at ``quantum=1`` and
a run at ``quantum=10**6`` visit different interleavings but identical
program states — the monitor must (and tests assert it does) produce the
same verdicts for both.
"""

from collections import deque
from dataclasses import dataclass

from repro.errors import KernelError, WouldBlock
from repro.telemetry import BusCounter, BusView
from repro.vm.cpu import ExitStatus

#: default preemption quantum, in cycles (~17 us of simulated time)
DEFAULT_QUANTUM = 50_000

#: PCB states the scheduler moves processes through
RUNNABLE = "runnable"
RUNNING = "running"
BLOCKED = "blocked"
ZOMBIE = "zombie"
REAPED = "reaped"


class SchedStats(BusView):
    """Observability counters for one scheduler run.

    A view over the telemetry bus (``sched.*`` counter keys): the
    scheduler constructs it bound to its kernel's bus, so scheduler
    observability shares the one spine with the kernel and monitor.
    """

    slices = BusCounter("sched.slices")
    preemptions = BusCounter("sched.preemptions")
    blocks = BusCounter("sched.blocks")
    wakes = BusCounter("sched.wakes")
    forced_wakes = BusCounter("sched.forced_wakes")
    spawned = BusCounter("sched.spawned")
    completed = BusCounter("sched.completed")
    switch_cycles = BusCounter("sched.switch_cycles")

    def as_dict(self):
        return {
            "slices": self.slices,
            "preemptions": self.preemptions,
            "blocks": self.blocks,
            "wakes": self.wakes,
            "forced_wakes": self.forced_wakes,
            "spawned": self.spawned,
            "completed": self.completed,
            "switch_cycles": self.switch_cycles,
        }


@dataclass
class Task:
    """One schedulable process: its PCB, its CPU, and its wait state."""

    proc: object
    cpu: object
    #: final ExitStatus once the task completes
    status: object = None
    #: the WouldBlock this task is parked on (None while runnable)
    wait: object = None
    #: whether the scheduler allocated this task's stack slot
    owns_stack: bool = False
    block_count: int = 0


class Scheduler:
    """Round-robin, cycle-quantum preemptive scheduler for one kernel."""

    def __init__(self, kernel, quantum=DEFAULT_QUANTUM, charge_switches=True):
        if quantum < 1:
            raise KernelError("quantum must be >= 1 cycle")
        self.kernel = kernel
        self.quantum = quantum
        self.charge_switches = charge_switches
        self.tasks = {}  # pid -> Task (all tasks ever added)
        self._runq = deque()
        self._blocked = []  # parked Tasks, in block order (deterministic)
        self.statuses = {}  # pid -> ExitStatus
        self.stats = SchedStats(bus=kernel.telemetry)
        #: set when no task can progress; blocking is disabled from then on
        #: so parked syscalls complete via their non-blocking fallbacks
        self.draining = False
        self._elapsed = 0  # cycles consumed by finished slices
        self._current = None
        self._slice_base = 0
        kernel.scheduler = self

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------

    def now(self):
        """The global cycle clock, valid inside and between slices."""
        ticks = self._elapsed
        if self._current is not None:
            ticks += self._current.proc.ledger.cycles - self._slice_base
        return ticks

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------

    def add(self, proc, cpu, owns_stack=False):
        """Enqueue a process with an already-constructed CPU."""
        if proc.pid in self.tasks:
            raise KernelError("pid %d already scheduled" % proc.pid)
        task = Task(proc=proc, cpu=cpu, owns_stack=owns_stack)
        self.tasks[proc.pid] = task
        proc.state = RUNNABLE
        self._runq.append(task)
        return task

    def spawn(self, parent, child, entry_addr, entry_arg=0):
        """Enqueue a clone()d child at its start routine (kernel calls this).

        The child shares the parent's image, CPU options, seccomp filters,
        tracer, and BASTION runtime (inheritance happens in
        ``Kernel._spawn_child``); only the stack region is new, taken from
        the collision-checked slot allocator and released when the child
        exits.
        """
        from repro.vm.cpu import CPU

        parent_task = self.tasks.get(parent.pid)
        if parent_task is None:
            raise KernelError("clone from unscheduled pid %d" % parent.pid)
        image = parent_task.cpu.image
        entry_name = image.func_containing(entry_addr)
        self.stats.spawned += 1
        if entry_name is None or image.func_base[entry_name] != entry_addr:
            # A corrupted start-routine pointer: the child faults at its
            # first fetch, exactly as the CPU would on a bad jump.
            child.kill("clone entry %#x not a function" % entry_addr)
            self._finish(
                Task(proc=child, cpu=None),
                ExitStatus("fault", 139, "clone entry %#x" % entry_addr),
            )
            return None
        stack_base = self.kernel.stacks.allocate(child.pid)
        cpu = CPU(
            image,
            child,
            self.kernel,
            parent_task.cpu.options,
            entry=entry_name,
            entry_args=(entry_arg,),
            stack_base=stack_base,
        )
        # the child executes the same binary: hooks staged before the
        # fork (attack trampolines included) are inherited like the shared
        # text image, so verdicts do not depend on which task wins the
        # accept race.  A snapshot copy, not the same dict: hooks installed
        # on a specific task after spawn stay private to it.
        cpu.hooks = dict(parent_task.cpu.hooks)
        return self.add(child, cpu, owns_stack=True)

    # ------------------------------------------------------------------
    # the scheduling loop
    # ------------------------------------------------------------------

    def run(self, max_slices=50_000_000):
        """Run every task to completion; returns ``{pid: ExitStatus}``."""
        while self._runq or self._blocked:
            self._wake_ready()
            if not self._runq:
                # Every task is parked and no predicate is satisfiable:
                # drain mode force-wakes everyone and disables further
                # blocking, so accept returns EAGAIN, read returns EOF,
                # and wait4 reaps or returns ECHILD — guaranteeing exit.
                self.draining = True
                while self._blocked:
                    task = self._blocked.pop(0)
                    self.stats.forced_wakes += 1
                    self._make_runnable(task)
                continue
            task = self._runq.popleft()
            self.stats.slices += 1
            if self.stats.slices > max_slices:
                raise KernelError("scheduler slice budget exhausted")
            outcome = self._run_slice(task)
            if isinstance(outcome, ExitStatus):
                self._finish(task, outcome)
            elif isinstance(outcome, WouldBlock):
                task.wait = outcome
                task.block_count += 1
                task.proc.state = BLOCKED
                self._blocked.append(task)
                self.stats.blocks += 1
                self._charge_switch(task)
            else:  # quantum expired
                task.proc.state = RUNNABLE
                self._runq.append(task)
                self.stats.preemptions += 1
                self._charge_switch(task)
        return dict(self.statuses)

    def _run_slice(self, task):
        task.proc.state = RUNNING
        self._current = task
        self._slice_base = task.proc.ledger.cycles
        try:
            return task.cpu.run_slice(self.quantum)
        finally:
            self._elapsed += task.proc.ledger.cycles - self._slice_base
            self._current = None

    def _wake_ready(self):
        """Move every parked task whose wake predicate holds to the queue."""
        still = []
        for task in self._blocked:
            wake = task.wait.wake if task.wait is not None else None
            if wake is None or wake():
                self.stats.wakes += 1
                self._make_runnable(task)
            else:
                still.append(task)
        self._blocked = still

    def _make_runnable(self, task):
        task.wait = None
        task.proc.state = RUNNABLE
        self._runq.append(task)

    def _charge_switch(self, task):
        if self.charge_switches:
            cost = task.proc.ledger_costs.context_switch
            task.proc.ledger.charge(cost, "sched")
            self.stats.switch_cycles += cost
            self._elapsed += cost  # switch overhead is wall-clock time too

    def _finish(self, task, status):
        proc = task.proc
        task.status = status
        self.statuses[proc.pid] = status
        self.stats.completed += 1
        if proc.parent is not None and proc.alive and status.kind in (
            "returned",
            "halt",
        ):
            # Returning from the start routine terminates the child.
            proc.exit(status.code)
        proc.state = REAPED if proc.reaped else ZOMBIE
        if task.owns_stack:
            self.kernel.stacks.release(proc.pid)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def runnable_count(self):
        return len(self._runq)

    @property
    def blocked_count(self):
        return len(self._blocked)

    def state_of(self, pid):
        task = self.tasks.get(pid)
        if task is None:
            return self.kernel.processes[pid].state if pid in self.kernel.processes else None
        return task.proc.state
