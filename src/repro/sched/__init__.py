"""repro.sched — deterministic preemptive scheduling for the simulated OS.

Public surface:

- :class:`Scheduler` — round-robin over Process PCBs by cycle quantum,
  with blocking ``accept``/``read``/``wait4`` and clone()d children
  enqueued instead of run inline;
- :class:`StackSlotAllocator` — collision-checked child stack regions
  (replaces the seed's pid-modulo placement that aliased past 64 pids);
- :data:`DEFAULT_QUANTUM` — the default preemption quantum in cycles.
"""

from repro.sched.scheduler import (
    BLOCKED,
    DEFAULT_QUANTUM,
    REAPED,
    RUNNABLE,
    RUNNING,
    SchedStats,
    Scheduler,
    Task,
    ZOMBIE,
)
from repro.sched.stackalloc import STACK_SLOT_BYTES, StackSlotAllocator

__all__ = [
    "BLOCKED",
    "DEFAULT_QUANTUM",
    "REAPED",
    "RUNNABLE",
    "RUNNING",
    "STACK_SLOT_BYTES",
    "SchedStats",
    "Scheduler",
    "StackSlotAllocator",
    "Task",
    "ZOMBIE",
]
