"""Collision-checked stack-slot allocation for child processes.

The seed placed a clone()d child's stack at
``STACK_TOP - (1 << 26) * ((pid % 64) + 1)``: once pids wrap past 64 (or a
long-running server spawns its 65th worker) two live children silently
share a stack region and corrupt each other's frames.  The allocator below
replaces the modulo with bookkeeping:

- slot 0 — the region directly below ``STACK_TOP`` — is reserved for the
  root process, whose CPU is created with ``stack_base=STACK_TOP``;
- each child gets the **lowest-numbered free slot** (deterministic across
  runs), recorded against its pid;
- :meth:`release` returns the slot to the free pool when the process exits
  (the scheduler and ``Kernel.run_child`` both release), so pid reuse can
  never alias a *live* stack;
- handing the same slot to two live pids raises :class:`KernelError`
  instead of silently corrupting memory.
"""

import heapq

from repro.errors import KernelError

#: default per-process stack region (matches the seed's 64 MiB spacing)
STACK_SLOT_BYTES = 1 << 26


class StackSlotAllocator:
    """Deterministic allocator of disjoint stack regions below ``top``.

    Slot ``i`` (1-based for children) covers
    ``[top - (i + 1) * slot_bytes, top - i * slot_bytes)`` and the returned
    stack base is its top: ``top - i * slot_bytes``.
    """

    def __init__(self, top=None, slot_bytes=STACK_SLOT_BYTES, max_slots=4096):
        if top is None:
            from repro.vm.loader import STACK_TOP

            top = STACK_TOP
        self.top = top
        self.slot_bytes = slot_bytes
        self.max_slots = max_slots
        self._free = []  # min-heap of released slot indexes
        self._next = 1  # slot 0 is the root process's region
        self._slot_of = {}  # pid -> slot index
        self._owner_of = {}  # slot index -> pid
        #: lifetime counters (surfaced by scheduler stats / tests)
        self.allocated = 0
        self.released = 0
        self.high_water = 0

    def __len__(self):
        return len(self._slot_of)

    def base_of_slot(self, slot):
        """Stack base (highest address, grows down) of ``slot``."""
        return self.top - slot * self.slot_bytes

    def allocate(self, pid):
        """Reserve a slot for ``pid`` and return its stack base.

        Allocation is idempotent per pid: a pid that already holds a slot
        gets the same base back (the kernel may re-enter on a restarted
        clone).
        """
        if pid in self._slot_of:
            return self.base_of_slot(self._slot_of[pid])
        if self._free:
            slot = heapq.heappop(self._free)
        else:
            slot = self._next
            self._next += 1
        if slot >= self.max_slots:
            raise KernelError(
                "stack slots exhausted: %d live child stacks" % len(self._slot_of)
            )
        if slot in self._owner_of:
            raise KernelError(
                "stack slot %d already owned by pid %d"
                % (slot, self._owner_of[slot])
            )
        self._slot_of[pid] = slot
        self._owner_of[slot] = pid
        self.allocated += 1
        self.high_water = max(self.high_water, len(self._slot_of))
        return self.base_of_slot(slot)

    def release(self, pid):
        """Return ``pid``'s slot to the free pool (no-op if it holds none)."""
        slot = self._slot_of.pop(pid, None)
        if slot is None:
            return False
        del self._owner_of[slot]
        heapq.heappush(self._free, slot)
        self.released += 1
        return True

    def owner(self, slot):
        """pid currently holding ``slot`` (or None)."""
        return self._owner_of.get(slot)

    def slot_of(self, pid):
        """Slot index held by ``pid`` (or None)."""
        return self._slot_of.get(pid)
