"""Reachability-based debloating (§2.2 "Attack surface reduction").

Removes functions unreachable from the entry point (direct edges plus the
address-taken closure), mirroring Nibbler/RAZOR-style binary debloating.
The report shows the paper's point: sensitive syscalls that *are* used
(``mmap``/``mprotect`` for pools and loading) survive debloating and remain
weaponizable.
"""

from dataclasses import dataclass, field

from repro.ir.callgraph import build_callgraph
from repro.baselines.seccomp_filter import used_syscalls
from repro.syscalls.sensitive import SENSITIVE_SYSCALLS


@dataclass
class DebloatReport:
    """What debloating removed and what necessarily survived."""

    kept_functions: set = field(default_factory=set)
    removed_functions: set = field(default_factory=set)
    removed_syscalls: set = field(default_factory=set)
    surviving_sensitive: set = field(default_factory=set)


def debloat_module(module):
    """Return ``(debloated_module, DebloatReport)``; input is untouched."""
    callgraph = build_callgraph(module)
    reachable = callgraph.reachable_from([module.entry])
    new_module = module.clone()
    report = DebloatReport()
    report.kept_functions = set(reachable)
    for name in list(new_module.functions):
        if name not in reachable:
            report.removed_functions.add(name)
            del new_module.functions[name]

    before = used_syscalls(module)
    after = used_syscalls(new_module)
    report.removed_syscalls = before - after
    report.surviving_sensitive = after & set(SENSITIVE_SYSCALLS)
    return new_module, report
