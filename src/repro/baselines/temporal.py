"""Temporal system call specialization (Ghavamnia et al., §12 related work).

The strongest published *filtering* baseline: after initialization, switch
the process to a tighter "serving phase" allowlist that drops the
init-only syscalls (execve for library loading, setuid for privilege drop,
mmap for pools, ...).

§12's point — which this module lets experiments demonstrate — is that
attacks like Control Jujutsu and AOCR "leverage system calls still
permitted in the application's serving phase", so even the temporal filter
cannot stop them: NGINX's serving phase must keep ``accept4``/``mprotect``
(and, for the upgrade path, ``execve``), and the attacker simply uses
those.
"""

from repro.ir.callgraph import build_callgraph
from repro.baselines.seccomp_filter import used_syscalls
from repro.compiler.calltype import wrapper_map
from repro.ir.instructions import Call, Syscall
from repro.kernel.seccomp import (
    SECCOMP_RET_ALLOW,
    SECCOMP_RET_KILL_PROCESS,
    build_action_filter,
)
from repro.syscalls.table import SYSCALLS


def phase_syscalls(module, serving_roots):
    """Split used syscalls into (init-only, serving) sets.

    ``serving_roots`` are the functions that constitute the serving phase
    (e.g. NGINX's worker cycle); every syscall reachable from them stays
    allowed after the phase switch, everything else becomes init-only.
    """
    graph = build_callgraph(module)
    wrappers = wrapper_map(module)
    serving_functions = graph.reachable_from(list(serving_roots))
    serving = set()
    for func_name in serving_functions:
        func = module.functions.get(func_name)
        if func is None:
            continue
        for instr in func.body:
            if isinstance(instr, Syscall):
                serving.add(instr.name)
            elif isinstance(instr, Call) and instr.callee in wrappers:
                serving.update(wrappers[instr.callee])
    init_only = used_syscalls(module) - serving
    return init_only, serving


def build_serving_phase_filter(module, serving_roots):
    """The post-initialization filter: KILL init-only + never-used syscalls."""
    init_only, serving = phase_syscalls(module, serving_roots)
    actions = {
        entry.nr: SECCOMP_RET_KILL_PROCESS
        for entry in SYSCALLS
        if entry.name not in serving
    }
    return (
        build_action_filter(
            actions, default_action=SECCOMP_RET_ALLOW, label="temporal-serving"
        ),
        init_only,
        serving,
    )
