"""Plain seccomp allowlist filtering (§2.2 "System call filtering").

The administrator-style policy: collect the set of syscalls a program uses,
ALLOW those, KILL everything else.  Unlike BASTION it makes a *binary*
decision — a sensitive-but-used syscall (``mprotect`` in NGINX) stays fully
allowed no matter how it is reached or with what arguments, which is exactly
the gap the paper's attacks walk through.
"""

from repro.ir.instructions import Syscall
from repro.kernel.bpf import (
    BPF_ABS,
    BPF_JEQ,
    BPF_JMP,
    BPF_K,
    BPF_LD,
    BPF_RET,
    BPF_W,
    BPFProgram,
    SECCOMP_DATA_ARGS,
    SECCOMP_DATA_NR,
    jump,
    stmt,
)
from repro.kernel.seccomp import (
    SECCOMP_RET_ALLOW,
    SECCOMP_RET_KILL_PROCESS,
    SeccompFilter,
    build_action_filter,
)
from repro.syscalls.table import SYSCALLS, nr_of


def used_syscalls(module):
    """All syscall names statically present in ``module``."""
    names = set()
    for func in module.functions.values():
        for instr in func.body:
            if isinstance(instr, Syscall):
                names.add(instr.name)
    return names


def build_allowlist_filter(module, extra_allowed=()):
    """A KILL-by-default seccomp filter allowing only used syscalls."""
    allowed = used_syscalls(module) | set(extra_allowed)
    actions = {
        entry.nr: SECCOMP_RET_KILL_PROCESS
        for entry in SYSCALLS
        if entry.name not in allowed
    }
    return build_action_filter(
        actions, default_action=SECCOMP_RET_ALLOW, label="allowlist"
    )


def build_arg_constraint_filter(syscall_name, position, allowed_values):
    """seccomp's argument constraining (§2.2): pin one argument of one
    syscall to a set of constant values — *application-wide*.

    Generated program::

        ld  [nr]
        jne #nr, allow            ; other syscalls unconstrained
        ld  [args[position].lo]
        jeq #v0, allow
        jeq #v1, allow
        ...
        ret KILL
        allow: ret ALLOW

    The paper's critique is structural: because the whole application
    shares one filter, an app that legitimately uses ``mprotect`` with both
    PROT_READ and PROT_READ|PROT_EXEC must allow *both values everywhere* —
    BASTION's per-callsite constant bindings are strictly tighter.
    """
    values = sorted({v & 0xFFFFFFFF for v in allowed_values})
    if not 1 <= position <= 6:
        raise ValueError("argument position must be 1..6")
    arg_offset = SECCOMP_DATA_ARGS + (position - 1) * 8
    instructions = [stmt(BPF_LD | BPF_W | BPF_ABS, SECCOMP_DATA_NR)]
    # not-this-syscall: skip the whole check and land on the final ALLOW
    body_len = 1 + len(values) + 1  # arg load + jeq chain + KILL
    instructions.append(
        jump(BPF_JMP | BPF_JEQ | BPF_K, nr_of(syscall_name), 0, body_len)
    )
    instructions.append(stmt(BPF_LD | BPF_W | BPF_ABS, arg_offset))
    for i, value in enumerate(values):
        skip_to_allow = (len(values) - 1 - i) + 1  # remaining jeqs + KILL
        instructions.append(jump(BPF_JMP | BPF_JEQ | BPF_K, value, skip_to_allow, 0))
    instructions.append(stmt(BPF_RET | BPF_K, SECCOMP_RET_KILL_PROCESS))
    instructions.append(stmt(BPF_RET | BPF_K, SECCOMP_RET_ALLOW))
    return SeccompFilter(
        BPFProgram(instructions),
        label="argpin:%s[%d]" % (syscall_name, position),
    )
