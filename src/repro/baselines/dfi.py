"""Application-wide DFI baseline (§2.2 "Data-flow integrity").

DFI instruments *every* load and store to validate reaching definitions —
the per-access cost the paper contrasts with BASTION's argument-only scope
(§3.3: "magnitudes smaller than ... conventional application-wide DFI-style
defenses").  The CPU charges :attr:`CostModel.dfi_per_access` on each memory
access when armed; the ablation bench compares that against BASTION's
instrumentation-site counts.
"""

from repro.vm.cpu import CPUOptions


def dfi_options(**overrides):
    """CPU options with the DFI baseline armed."""
    options = CPUOptions(dfi=True)
    for key, value in overrides.items():
        setattr(options, key, value)
    return options
