"""Coarse-grained LLVM CFI baseline (§9.2 "Comparison against CET and LLVM CFI").

LLVM CFI checks that every indirect call's target belongs to the callsite's
*type-signature equivalence class* — no per-path precision, no argument
checks.  The enforcement itself happens in the CPU
(:meth:`repro.vm.cpu.CPU._cfi_check`); this module provides the run
configuration and an analysis of equivalence-class sizes, the quantity that
determines how permissive the defense is (§2.2: large ECs are bypassable).
"""

from repro.ir.callgraph import build_callgraph
from repro.vm.cpu import CPUOptions


def llvm_cfi_options(**overrides):
    """CPU options with LLVM CFI armed (CFI and CET don't stack — §9.2
    notes LLVM CFI "does not function properly when paired with CET")."""
    options = CPUOptions(llvm_cfi=True, cet=False)
    for key, value in overrides.items():
        setattr(options, key, value)
    return options


def cfi_equivalence_classes(module):
    """Map each type signature to its member functions.

    Only address-taken functions matter (others can never be indirect-call
    targets), mirroring how Clang builds its jump tables.
    """
    callgraph = build_callgraph(module)
    classes = {}
    for name in sorted(callgraph.address_taken):
        func = module.functions.get(name)
        if func is None:
            continue
        classes.setdefault(func.sig, []).append(name)
    return classes


def largest_equivalence_class(module):
    """Size of the biggest EC — the attacker's room to move under CFI."""
    classes = cfi_equivalence_classes(module)
    if not classes:
        return 0
    return max(len(members) for members in classes.values())
