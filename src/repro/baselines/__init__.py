"""Baseline defenses BASTION is compared against (§2.2, §9.2, Table 6).

- :mod:`repro.baselines.seccomp_filter` — plain seccomp allowlisting: the
  coarse-grained binary-decision filtering the paper argues is insufficient;
- :mod:`repro.baselines.debloat` — reachability-based debloating: removes
  never-used code/syscalls but must keep sensitive-but-used ones;
- :mod:`repro.baselines.llvm_cfi` — coarse-grained type-signature CFI (the
  ``-fsanitize=cfi`` stand-in), enforced by the CPU at indirect callsites;
- :mod:`repro.baselines.dfi` — application-wide data-flow integrity, whose
  per-access cost motivates BASTION's narrow argument-integrity context.

CET (hardware shadow stack) lives in :mod:`repro.vm.shadowstack` and is
enabled through :class:`repro.vm.cpu.CPUOptions`.
"""

from repro.baselines.seccomp_filter import build_allowlist_filter, used_syscalls
from repro.baselines.debloat import debloat_module, DebloatReport
from repro.baselines.llvm_cfi import llvm_cfi_options, cfi_equivalence_classes
from repro.baselines.dfi import dfi_options

__all__ = [
    "build_allowlist_filter",
    "used_syscalls",
    "debloat_module",
    "DebloatReport",
    "llvm_cfi_options",
    "cfi_equivalence_classes",
    "dfi_options",
]
